"""Differential replay: the incremental evaluator vs from-scratch passes.

The simulated-annealing refiner trusts ``MakespanEvaluator`` for every
single price it pays, so this suite replays long seeded random
``apply_move`` / ``apply_swap`` sequences and, after *every* committed
step, checks the evaluator's makespan, full bottom-weight table, and
critical path against a from-scratch recompute of the live quotient —
bit-for-bit, as the evaluator's contract promises. A second replay mixes
in tentative ``eval_move`` / ``eval_swap`` probes to verify they leave no
residue behind.

The property-based half (:class:`TestKernelDifferential`) turns the same
idea on the kernel seam: hypothesis draws arbitrary DAGs — including
empty, single-node, and disconnected ones, with unassigned (``None``)
processors mixed in — and the array kernel must reproduce the reference
kernel bit for bit on every one of them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import MakespanEvaluator
from repro.core.kernels import use_kernel
from repro.core.kernels.array import ArrayKernel
from repro.core.kernels.reference import ReferenceKernel
from repro.core.makespan import bottom_weights, critical_path, makespan
from repro.core.quotient import QuotientGraph
from repro.generators.families import generate_workflow
from repro.partition.api import acyclic_partition
from repro.platform.bandwidth import GroupedBandwidth
from repro.platform.presets import default_cluster
from repro.utils.rng import make_rng
from repro.workflow.graph import Workflow


def _assigned_quotient(family: str, n: int, k: int, cluster, seed: int):
    """A quotient with every block deterministically assigned a processor."""
    wf = generate_workflow(family, n, seed=seed)
    partition = acyclic_partition(wf, k)
    procs = cluster.processors
    q = QuotientGraph.from_partition(
        wf, partition, [procs[i % len(procs)] for i in range(len(partition))])
    assert q.is_acyclic()
    return q


def _check_against_full(q, cluster, ev, step):
    """The evaluator's whole view must equal a from-scratch recompute."""
    fresh = bottom_weights(q, cluster)
    mu = max(fresh.values()) if fresh else 0.0
    assert ev.makespan() == mu, f"makespan diverged at step {step}"
    assert ev.bottom_weights() == fresh, f"weights diverged at step {step}"
    assert ev.critical_path() == critical_path(q, cluster), \
        f"critical path diverged at step {step}"


@pytest.mark.parametrize("family,n,k,seed", [
    ("blast", 60, 8, 0),
    ("genome", 80, 12, 1),
    ("soykb", 70, 10, 2),
])
def test_apply_sequences_match_full_recompute(family, n, k, seed):
    """Seeded apply_move/apply_swap replay: exact agreement at every step."""
    cluster = default_cluster()
    q = _assigned_quotient(family, n, k, cluster, seed)
    ev = MakespanEvaluator(q, cluster)
    rng = make_rng(seed)
    ids = sorted(q.blocks)
    procs = cluster.processors

    for step in range(120):
        if rng.random() < 0.5:
            bid = ids[int(rng.integers(len(ids)))]
            target = procs[int(rng.integers(len(procs)))]
            ev.apply_move(bid, target)
        else:
            a = ids[int(rng.integers(len(ids)))]
            b = ids[int(rng.integers(len(ids)))]
            if a == b:
                continue
            ev.apply_swap(a, b)
        _check_against_full(q, cluster, ev, step)

    # the whole replay must have been priced incrementally
    assert ev.full_recomputes == 1  # the constructor's initial pass
    assert ev.delta_syncs > 0


def test_unassigning_and_heterogeneous_links_replay():
    """Moves to None (unassigned) and a grouped interconnect, same contract.

    ``proc=None`` exercises the default-speed/default-bandwidth fallbacks
    of Eq. (1); the grouped bandwidth model exercises the in-edge
    repricing a reassignment triggers under a heterogeneous interconnect.
    """
    base = default_cluster()
    groups = {p.name: ("east" if i % 2 else "west")
              for i, p in enumerate(base.processors)}
    cluster = base.with_bandwidth_model(GroupedBandwidth(groups, 4.0, 0.5))
    q = _assigned_quotient("bwa", 60, 9, cluster, seed=3)
    ev = MakespanEvaluator(q, cluster)
    rng = make_rng(7)
    ids = sorted(q.blocks)
    procs = cluster.processors

    for step in range(100):
        bid = ids[int(rng.integers(len(ids)))]
        if rng.random() < 0.25:
            ev.apply_move(bid, None)
        else:
            ev.apply_move(bid, procs[int(rng.integers(len(procs)))])
        _check_against_full(q, cluster, ev, step)
    assert ev.full_recomputes == 1


def test_tentative_probes_leave_no_residue():
    """eval_move/eval_swap between commits never perturb the caches."""
    cluster = default_cluster()
    q = _assigned_quotient("genome", 70, 10, cluster, seed=5)
    ev = MakespanEvaluator(q, cluster)
    rng = make_rng(11)
    ids = sorted(q.blocks)
    procs = cluster.processors

    for step in range(60):
        # a burst of tentative probes...
        for _ in range(int(rng.integers(1, 4))):
            a = ids[int(rng.integers(len(ids)))]
            b = ids[int(rng.integers(len(ids)))]
            if rng.random() < 0.5:
                ev.eval_move(a, procs[int(rng.integers(len(procs)))])
            elif a != b:
                ev.eval_swap(a, b)
        # ...then one committed mutation, checked from scratch
        bid = ids[int(rng.integers(len(ids)))]
        ev.apply_move(bid, procs[int(rng.integers(len(procs)))])
        _check_against_full(q, cluster, ev, step)
    assert ev.full_recomputes == 1


@pytest.mark.parametrize("family,n,k,seed", [
    ("blast", 60, 8, 0),
    ("genome", 80, 12, 4),
])
def test_processor_failure_replay_matches_full_recompute(family, n, k, seed):
    """Evacuating a dead processor via ``set_proc`` keeps deltas consistent.

    The dynamic simulator reacts to a processor failure by reassigning
    every block off the victim; this replays exactly that — each victim in
    turn, all of its blocks moved to survivors (round-robin), with a
    from-scratch recompute checked after every single reassignment and
    after each complete evacuation.
    """
    cluster = default_cluster()
    q = _assigned_quotient(family, n, k, cluster, seed)
    ev = MakespanEvaluator(q, cluster)
    step = 0
    for victim in cluster.processors[:4]:
        survivors = [p for p in cluster.processors if p.name != victim.name]
        doomed = sorted(bid for bid, blk in q.blocks.items()
                        if blk.proc is not None and blk.proc.name == victim.name)
        for i, bid in enumerate(doomed):
            # the failure first orphans the block (proc=None: the paper's
            # default-speed estimate), then the repair re-places it
            ev.apply_move(bid, None)
            _check_against_full(q, cluster, ev, step)
            ev.apply_move(bid, survivors[i % len(survivors)])
            step += 1
            _check_against_full(q, cluster, ev, step)
        assert victim.name not in q.used_processors()
    # every failure was priced incrementally — zero extra full passes
    assert ev.full_recomputes == 1
    assert ev.delta_syncs > 0


def test_incremental_growth_ops_match_full_recompute():
    """add_block / add_quotient_edge / set_work fold in without full passes.

    This is the arrival/inflation path of the dynamic simulator: new jobs
    join the live quotient as fresh blocks, get wired to existing blocks,
    and running blocks see their work revised — all priced by delta sync.
    """
    cluster = default_cluster()
    q = _assigned_quotient("soykb", 60, 8, cluster, seed=6)
    ev = MakespanEvaluator(q, cluster)
    assert ev.full_recomputes == 1
    rng = make_rng(13)
    procs = cluster.processors
    next_task = 10_000  # far above any generated task id
    for step in range(40):
        roll = rng.random()
        ids = sorted(q.blocks)
        if roll < 0.4:
            # a small arriving job: fresh tasks, one new block
            size = int(rng.integers(1, 4))
            tasks = []
            for _ in range(size):
                q.wf.add_task(next_task, work=float(rng.uniform(0.5, 3.0)),
                              memory=float(rng.uniform(0.1, 1.0)))
                tasks.append(next_task)
                next_task += 1
            bid = q.add_block(tasks, procs[int(rng.integers(len(procs)))])
            assert q.blocks[bid].work > 0
        elif roll < 0.7:
            # wire an existing block to another (low id -> high id keeps
            # the quotient acyclic, mirroring the test DAG convention)
            a = ids[int(rng.integers(len(ids)))]
            b = ids[int(rng.integers(len(ids)))]
            if a == b:
                continue
            a, b = min(a, b), max(a, b)
            q.add_quotient_edge(a, b, float(rng.uniform(0.1, 2.0)))
        else:
            # runtime inflation: a block's work estimate is revised up
            bid = ids[int(rng.integers(len(ids)))]
            q.set_work(bid, q.blocks[bid].work * float(rng.uniform(1.0, 1.5)))
        ev.makespan()
        _check_against_full(q, cluster, ev, step)
    assert ev.full_recomputes == 1
    assert ev.delta_syncs > 0


# ----------------------------------------------------------------------
# property-based: the array kernel vs the reference kernel on arbitrary
# DAGs (satellite of the flat-array-core PR)
# ----------------------------------------------------------------------
_weight = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                    width=64).map(lambda x: x + 0.001)


@st.composite
def random_dags(draw):
    """(workflow, proc-pattern) pairs covering the degenerate corners.

    Tasks are ``0..n-1`` with edges only low -> high, so any drawn edge
    set is acyclic; density is drawn per-instance, and 0 produces fully
    disconnected graphs. ``procs[i] = None`` marks an unassigned block.
    """
    n = draw(st.integers(min_value=0, max_value=24))
    edges = {}
    if n >= 2:
        density = draw(st.floats(min_value=0.0, max_value=1.0))
        candidates = [(u, v) for u in range(n - 1) for v in range(u + 1, n)]
        for u, v in candidates:
            if draw(st.floats(min_value=0.0, max_value=1.0)) < density:
                edges[(u, v)] = draw(_weight)
    wf = Workflow("hyp")
    for u in range(n):
        wf.add_task(u, draw(_weight), draw(_weight))
    for (u, v), c in edges.items():
        wf.add_edge(u, v, c)
    pattern = draw(st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
        min_size=n, max_size=n))
    return wf, pattern


def _quotient_of(wf: Workflow, pattern, cluster) -> QuotientGraph:
    q = QuotientGraph.from_partition(wf, [{u} for u in wf.tasks()])
    procs = cluster.processors
    for bid, choice in zip(sorted(q.blocks), pattern):
        q.set_proc(bid, None if choice is None else procs[choice % len(procs)])
    return q


class TestKernelDifferential:
    @settings(max_examples=120, deadline=None)
    @given(random_dags())
    def test_bottom_weights_bit_for_bit(self, case):
        wf, pattern = case
        cluster = default_cluster()
        q = _quotient_of(wf, pattern, cluster)
        ref = ReferenceKernel().bottom_weights(q, cluster, 1.0)
        arr = ArrayKernel(forced=True).bottom_weights(q, cluster, 1.0)
        assert ref == arr

    @settings(max_examples=120, deadline=None)
    @given(random_dags())
    def test_task_requirements_bit_for_bit(self, case):
        wf, _ = case
        ref = ReferenceKernel().task_requirements(wf)
        arr = ArrayKernel(forced=True).task_requirements(wf)
        assert ref == arr
        assert list(ref) == list(arr)

    @settings(max_examples=80, deadline=None)
    @given(random_dags())
    def test_makespan_identical_under_either_selection(self, case):
        wf, pattern = case
        cluster = default_cluster()
        q = _quotient_of(wf, pattern, cluster)
        with use_kernel("reference"):
            mu_ref = makespan(q, cluster)
        with use_kernel("array"):
            mu_arr = makespan(q, cluster)
        assert mu_ref == mu_arr

    @settings(max_examples=80, deadline=None)
    @given(random_dags(),
           st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    def test_default_speed_fallback_bit_for_bit(self, case, default_speed):
        """None-proc blocks price at the drawn default speed in both."""
        wf, pattern = case
        cluster = default_cluster()
        q = _quotient_of(wf, [None] * len(pattern), cluster)
        ref = ReferenceKernel().bottom_weights(q, cluster, default_speed)
        arr = ArrayKernel(forced=True).bottom_weights(q, cluster, default_speed)
        assert ref == arr
