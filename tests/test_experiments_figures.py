"""Smoke + shape tests for every figure/table driver (tiny corpora).

These check the *structure* of each experiment's output; the shape of the
numbers against the paper is recorded by the benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.core.heuristic import DagHetPartConfig
from repro.experiments import figures

TINY = dict(
    sizes={"small": (24,), "mid": (40,), "big": (56,)},
    families=("blast", "soykb"),
    config=DagHetPartConfig(k_prime_values=(1, 4, 12)),
    seed=0,
)


class TestStaticTables:
    def test_table2_rows(self):
        rows = figures.table2()["rows"]
        assert len(rows) == 6
        assert rows[-1] == {"processor": "C2", "speed_ghz": 32.0, "memory_gb": 192.0}

    def test_table3_rows(self):
        rows = figures.table3()["rows"]
        assert len(rows) == 6
        assert rows[0]["morehet"] == "local*"
        assert rows[-1]["memory'"] == 192.0


class TestFig3:
    def test_left_structure(self):
        out = figures.fig3_left(**TINY)
        types = [r["workflow_type"] for r in out["rows"]]
        assert "all" in types
        assert all(0 < r["relative_makespan_pct"] <= 200 for r in out["rows"])

    def test_right_structure(self):
        out = figures.fig3_right(**TINY)
        cpus = {r["n_cpus"] for r in out["rows"]}
        assert cpus == {18, 36, 60}


class TestFig4:
    def test_heterogeneity_levels_present(self):
        out = figures.fig4(**TINY)
        levels = {r["heterogeneity"] for r in out["rows"]}
        assert levels == {"nohet", "lesshet", "default", "morehet"}
        for row in out["rows"]:
            assert row["absolute_makespan"] > 0


class TestFig5And6:
    def test_fig5_per_family_series(self):
        out = figures.fig5(**TINY)
        fams = {r["family"] for r in out["rows"]}
        assert fams <= {"blast", "soykb"}
        for row in out["rows"]:
            assert row["n_tasks"] > 0

    def test_fig6_absolute(self):
        out = figures.fig6(**TINY)
        assert all(r["makespan"] > 0 for r in out["rows"])


class TestFig7:
    def test_bandwidth_series(self):
        out = figures.fig7(betas=(0.5, 2.0), **TINY)
        betas = {r["bandwidth"] for r in out["rows"]}
        assert betas == {0.5, 2.0}


class TestRuntimes:
    def test_fig8_relative_runtime(self):
        out = figures.fig8(**TINY)
        assert out["rows"]
        for row in out["rows"]:
            assert row["relative_runtime"] > 0

    def test_fig9_absolute_runtime(self):
        out = figures.fig9(**TINY)
        assert all(r["runtime_sec"] >= 0 for r in out["rows"])

    def test_table4_categories(self):
        out = figures.table4(**TINY)
        cats = [r["workflow_set"] for r in out["rows"]]
        assert cats == ["real", "small", "mid", "big"]


class TestSectionExperiments:
    def test_success_counts(self):
        out = figures.success_counts_experiment(**TINY)
        for row in out["rows"]:
            assert 0 <= row["scheduled"] <= row["total"]
        clusters = {r["cluster"] for r in out["rows"]}
        assert clusters == {"small-18", "default-36", "large-60"}

    def test_demand4x_columns(self):
        out = figures.demand4x(**TINY)
        for row in out["rows"]:
            assert "relative_makespan_pct_1x" in row
            assert "relative_makespan_pct_4x" in row

    def test_failure_report_structure(self):
        out = figures.failure_report(**TINY)
        assert out["rows"], "rows are never empty (placeholder when clean)"
        for row in out["rows"]:
            assert set(row) == {"instance", "workflow_type", "algorithm",
                                "failure_reason"}
        # every failed record is accounted for, with a structured reason
        failed = [r for r in out["records"] if not r.success]
        real_rows = [r for r in out["rows"] if r["instance"] != "(none)"]
        assert len(real_rows) == len(failed)
        for row in real_rows:
            assert row["failure_reason"]
