"""Tests of the experiment harness: instances, runner, metrics, report."""

import math

import pytest

from repro.core.heuristic import DagHetPartConfig
from repro.experiments.instances import (
    PAPER_SIZES,
    build_corpus,
    real_instances,
    scaled_cluster_for,
    synthetic_instances,
    synthetic_sizes,
)
from repro.experiments.metrics import (
    aggregate_by,
    geometric_mean,
    makespan_ratios,
    relative_makespan_by,
    success_counts,
)
from repro.experiments.report import format_table
from repro.experiments.runner import RunRecord, run_corpus, run_instance
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster

TINY_SIZES = {"small": (24,), "mid": (40,), "big": (60,)}
FAST_CFG = DagHetPartConfig(k_prime_values=(1, 4, 12))


class TestInstances:
    def test_paper_sizes_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert synthetic_sizes() == PAPER_SIZES

    def test_scaled_sizes_preserve_ordering(self):
        sizes = synthetic_sizes(full=False)
        flat_scaled = [n for cat in ("small", "mid", "big") for n in sizes[cat]]
        assert flat_scaled == sorted(flat_scaled)

    def test_repro_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "100")
        sizes = synthetic_sizes()
        assert sizes["big"][-1] == 300

    def test_synthetic_instances_grouping(self):
        instances = synthetic_instances(sizes=TINY_SIZES, families=("blast", "bwa"))
        assert len(instances) == 6
        assert {i.category for i in instances} == {"small", "mid", "big"}

    def test_real_instances(self):
        instances = real_instances()
        assert len(instances) == 5
        assert all(i.category == "real" for i in instances)

    def test_corpus_is_deterministic(self):
        a = build_corpus(seed=0, sizes=TINY_SIZES, families=("blast",))
        b = build_corpus(seed=0, sizes=TINY_SIZES, families=("blast",))
        assert [i.name for i in a] == [i.name for i in b]
        wa, wb = a[-1].workflow, b[-1].workflow
        assert [wa.work(u) for u in wa.tasks()] == [wb.work(u) for u in wb.tasks()]

    def test_scaled_cluster_for(self):
        wf = generate_workflow("seismology", 200, seed=0)
        cluster = default_cluster()
        scaled = scaled_cluster_for(wf, cluster)
        assert scaled.max_memory() >= wf.max_task_requirement()
        # speeds unchanged
        assert sorted(p.speed for p in scaled) == sorted(p.speed for p in cluster)

    def test_scaled_cluster_noop_when_fits(self):
        from repro.generators.realworld import generate_real_workflow
        wf = generate_real_workflow("airrflow")
        cluster = default_cluster()
        assert scaled_cluster_for(wf, cluster) is cluster

    def test_scaled_cluster_noop_at_exact_fit(self):
        """peak == max memory needs no headroom: identical object back."""
        from repro.workflow.graph import Workflow
        cluster = default_cluster()
        wf = Workflow("exact")
        wf.add_task("t", work=1.0, memory=cluster.max_memory())
        assert wf.max_task_requirement() == cluster.max_memory()
        assert scaled_cluster_for(wf, cluster) is cluster

    def test_scaled_cluster_applies_headroom_factor(self):
        """Every memory is multiplied by exactly peak/max * headroom."""
        from repro.workflow.graph import Workflow
        cluster = default_cluster()
        peak = 3.0 * cluster.max_memory()
        wf = Workflow("big")
        wf.add_task("t", work=1.0, memory=peak)
        scaled = scaled_cluster_for(wf, cluster, headroom=1.5)
        factor = peak / cluster.max_memory() * 1.5
        for before, after in zip(cluster.processors, scaled.processors):
            assert after.memory == pytest.approx(before.memory * factor)
            assert after.speed == before.speed and after.name == before.name
        # the peak task now fits, with room to spare
        assert scaled.max_memory() >= peak * 1.5 * 0.999

    def test_scaled_cluster_default_headroom_makes_peak_fit(self):
        from repro.workflow.graph import Workflow
        cluster = default_cluster()
        wf = Workflow("big")
        wf.add_task("t", work=1.0, memory=cluster.max_memory() * 7.3)
        scaled = scaled_cluster_for(wf, cluster)
        assert scaled.max_memory() >= wf.max_task_requirement()


class TestSeedBase:
    """synthetic_instances must not collapse Generator seeds to 0."""

    def test_generator_seed_is_not_collapsed_to_zero(self):
        import numpy as np
        from repro.experiments.instances import seed_base
        gen = np.random.default_rng(123)
        base = seed_base(gen)
        assert base != 0
        assert base != seed_base(np.random.default_rng(124))

    def test_generator_seed_is_stable_for_equal_state(self):
        import numpy as np
        from repro.experiments.instances import seed_base
        a = np.random.default_rng(5)
        b = np.random.default_rng(5)
        assert seed_base(a) == seed_base(b)
        # deriving the base does not consume the stream
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_generator_seeded_corpora_differ_by_seed(self):
        import numpy as np
        instances_a = synthetic_instances(seed=np.random.default_rng(1),
                                          sizes={"small": (24,)},
                                          families=("blast",))
        instances_b = synthetic_instances(seed=np.random.default_rng(2),
                                          sizes={"small": (24,)},
                                          families=("blast",))
        wa, wb = instances_a[0].workflow, instances_b[0].workflow
        assert [wa.work(u) for u in wa.tasks()] != \
            [wb.work(u) for u in wb.tasks()]

    def test_int_like_and_none_seeds(self):
        from repro.experiments.instances import seed_base
        assert seed_base(None) == 0
        assert seed_base(7) == 7
        assert seed_base("12") == 12  # int()-coercible passes through

    def test_unusable_seed_raises_type_error(self):
        from repro.experiments.instances import seed_base
        with pytest.raises(TypeError, match="corpus seed"):
            seed_base(object())


class TestRunner:
    def test_run_instance_records(self):
        inst = synthetic_instances(sizes={"small": (24,)}, families=("blast",))[0]
        records = run_instance(inst, default_cluster(), config=FAST_CFG)
        assert {r.algorithm for r in records} == {"DagHetMem", "DagHetPart"}
        for r in records:
            assert r.success
            assert r.makespan > 0
            assert r.runtime >= 0
            assert r.n_blocks >= 1

    def test_failed_run_recorded_not_raised(self):
        from repro.platform.cluster import Cluster
        from repro.platform.processor import Processor
        inst = synthetic_instances(sizes={"small": (24,)}, families=("blast",))[0]
        tiny = Cluster([Processor("p", 1.0, 0.001)])
        records = run_instance(inst, tiny, config=FAST_CFG, scale_memory=False)
        assert all(not r.success for r in records)
        assert all(math.isinf(r.makespan) for r in records)

    def test_run_corpus_progress_callback(self):
        instances = synthetic_instances(sizes={"small": (24,)}, families=("bwa",))
        messages = []
        run_corpus(instances, default_cluster(), config=FAST_CFG,
                   progress=messages.append)
        assert len(messages) == 1


class TestParallelRunner:
    def _corpus(self):
        return synthetic_instances(sizes={"small": (24, 32)},
                                   families=("blast", "bwa"))

    @staticmethod
    def _strip_runtime(records):
        from dataclasses import asdict
        return [{k: v for k, v in asdict(r).items() if k != "runtime"}
                for r in records]

    def test_parallel_records_match_serial(self):
        corpus = self._corpus()
        serial = run_corpus(corpus, default_cluster(), config=FAST_CFG)
        par = run_corpus(corpus, default_cluster(), config=FAST_CFG, parallel=2)
        assert self._strip_runtime(par) == self._strip_runtime(serial)

    def test_parallel_progress_and_all_cpus(self):
        corpus = self._corpus()
        messages = []
        records = run_corpus(corpus, default_cluster(), config=FAST_CFG,
                             parallel=-1, progress=messages.append)
        assert len(records) == 2 * len(corpus)
        assert len(messages) == len(corpus)

    def test_parallel_env_default(self, monkeypatch):
        from repro.experiments.runner import resolve_parallel
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert resolve_parallel(None) == 3
        assert resolve_parallel(2) == 2
        monkeypatch.setenv("REPRO_PARALLEL", "junk")
        with pytest.warns(RuntimeWarning, match="REPRO_PARALLEL='junk'"):
            assert resolve_parallel(None) == 0
        monkeypatch.delenv("REPRO_PARALLEL")
        assert resolve_parallel(None) == 0
        assert resolve_parallel(-1) >= 1

    def test_parallel_one_is_serial(self):
        corpus = self._corpus()[:1]
        records = run_corpus(corpus, default_cluster(), config=FAST_CFG,
                             parallel=8)  # single instance: stays in-process
        assert len(records) == 2


class TestMetrics:
    def _fake_records(self):
        mk = lambda inst, alg, ms, ok=True: RunRecord(
            instance=inst, family="f", category="small", n_tasks=10,
            algorithm=alg, cluster="c", bandwidth=1.0, success=ok,
            makespan=ms, runtime=0.1, n_blocks=1)
        return [
            mk("a", "DagHetMem", 100.0), mk("a", "DagHetPart", 50.0),
            mk("b", "DagHetMem", 100.0), mk("b", "DagHetPart", 25.0),
            mk("c", "DagHetMem", float("inf"), ok=False),
            mk("c", "DagHetPart", 10.0),
        ]

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert math.isnan(geometric_mean([]))
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])

    def test_ratios_skip_failed_pairs(self):
        ratios = makespan_ratios(self._fake_records())
        assert len(ratios) == 2
        values = sorted(r for _, r in ratios)
        assert values == [0.25, 0.5]

    def test_relative_makespan_geomean(self):
        rel = relative_makespan_by(self._fake_records(), key=lambda r: r.category)
        assert rel["small"] == pytest.approx(100.0 * math.sqrt(0.5 * 0.25))

    def test_success_counts(self):
        counts = success_counts(self._fake_records())
        assert counts[("small", "DagHetMem")] == (2, 3)
        assert counts[("small", "DagHetPart")] == (3, 3)

    def test_aggregate_by_modes(self):
        recs = self._fake_records()
        val = lambda r: r.makespan
        key = lambda r: r.algorithm
        assert aggregate_by(recs, key, val, "max")["DagHetPart"] == 50.0
        assert aggregate_by(recs, key, val, "sum")["DagHetPart"] == 85.0
        assert aggregate_by(recs, key, val, "mean")["DagHetMem"] == 100.0
        with pytest.raises(ValueError):
            aggregate_by(recs, key, val, "median")


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"name": "x", "value": 1.5}, {"name": "longer", "value": 22.0}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestInstanceDataclass:
    def test_n_tasks_reflects_workflow(self):
        inst = synthetic_instances(sizes={"small": (30,)}, families=("blast",))[0]
        assert inst.n_tasks == inst.workflow.n_tasks
        assert inst.category == "small"
        assert inst.family == "blast"

    def test_instances_are_frozen(self):
        import dataclasses
        inst = real_instances()[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            inst.name = "other"


class TestRunnerValidateFlag:
    def test_validate_flag_runs_full_checks(self):
        inst = synthetic_instances(sizes={"small": (24,)}, families=("bwa",))[0]
        records = run_instance(inst, default_cluster(), config=FAST_CFG,
                               validate=True)
        assert all(r.success for r in records)

    def test_unknown_algorithm_rejected(self):
        inst = synthetic_instances(sizes={"small": (24,)}, families=("bwa",))[0]
        with pytest.raises(ValueError):
            run_instance(inst, default_cluster(), algorithms=("Mystery",))
