"""Makespan engine tests, anchored on the paper's worked example (Fig. 1)."""

import pytest

from repro.core.makespan import bottom_weights, critical_path, link_rule, makespan
from repro.core.quotient import QuotientGraph
from repro.platform.bandwidth import LinkBandwidth
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.utils.errors import CyclicWorkflowError
from repro.workflow.graph import Workflow


class TestFig1GoldenExample:
    """Section 3.3's worked example: l4=1, l3=5, l2=7, l1=12."""

    def test_quotient_weights(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        works = sorted(blk.work for blk in q.blocks.values())
        assert works == [1.0, 1.0, 3.0, 4.0]

    def test_quotient_edge_costs(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        ids = {i: bid for i, bid in enumerate(q.blocks)}
        # all edge costs are 1 except V1 -> V3 which sums two task edges
        costs = sorted(c for nbrs in q.succ.values() for c in nbrs.values())
        assert costs == [1.0, 1.0, 1.0, 1.0, 2.0]

    def test_bottom_weights(self, fig1_workflow, fig1_partition, unit_cluster):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        l = bottom_weights(q, unit_cluster)
        # block ids follow partition order: V1, V2, V3, V4
        v1, v2, v3, v4 = list(q.blocks)
        assert l[v4] == pytest.approx(1.0)
        assert l[v3] == pytest.approx(5.0)
        assert l[v2] == pytest.approx(7.0)
        assert l[v1] == pytest.approx(12.0)

    def test_makespan_is_12(self, fig1_workflow, fig1_partition, unit_cluster):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        assert makespan(q, unit_cluster) == pytest.approx(12.0)

    def test_critical_path_starts_at_source_block(self, fig1_workflow,
                                                  fig1_partition, unit_cluster):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        path = critical_path(q, unit_cluster)
        v1, v2, v3, v4 = list(q.blocks)
        # l1 = 4 + (1 + l2): the max is attained through V2
        assert path[0] == v1
        assert path[1] == v2
        assert path[-1] == v4

    def test_merging_4_and_9_creates_cycle(self, fig1_workflow):
        """The paper: merging tasks 4 and 9 yields a cyclic quotient."""
        partition = [{1, 2, 3}, {4, 9}, {5}, {6, 7, 8}]
        q = QuotientGraph.from_partition(fig1_workflow, partition)
        assert not q.is_acyclic()
        with pytest.raises(CyclicWorkflowError):
            makespan(q, Cluster([Processor("p", 1, 1)], name="c1"))


class TestMakespanProperties:
    def test_single_block_is_total_work_over_speed(self, chain_workflow):
        cluster = Cluster([Processor("p", speed=4.0, memory=1e9)])
        q = QuotientGraph.from_partition(
            chain_workflow, [set("abcd")], [cluster.processors[0]])
        assert makespan(q, cluster) == pytest.approx(chain_workflow.total_work() / 4.0)

    def test_unassigned_blocks_use_speed_one(self, chain_workflow, unit_cluster):
        q = QuotientGraph.from_partition(chain_workflow, [set("abcd")])
        assert makespan(q, unit_cluster) == pytest.approx(chain_workflow.total_work())

    def test_default_speed_override(self, chain_workflow, unit_cluster):
        q = QuotientGraph.from_partition(chain_workflow, [set("abcd")])
        fast = makespan(q, unit_cluster, default_speed=10.0)
        assert fast == pytest.approx(chain_workflow.total_work() / 10.0)

    def test_bandwidth_scales_communication(self, chain_workflow):
        p1, p2 = Processor("p1", 1, 1e9), Processor("p2", 1, 1e9)
        blocks = [{"a", "b"}, {"c", "d"}]
        for beta, expected_comm in [(1.0, 1.0), (0.5, 2.0), (2.0, 0.5)]:
            cluster = Cluster([p1, p2], bandwidth=beta)
            q = QuotientGraph.from_partition(chain_workflow, blocks, [p1, p2])
            # l(second) = 3+4 = 7; l(first) = 1+2 + c(b,c)/beta + 7
            assert makespan(q, cluster) == pytest.approx(10.0 + expected_comm)

    def test_faster_processors_never_hurt(self, fig1_workflow, fig1_partition):
        slow = [Processor(f"s{i}", 1.0, 1e9) for i in range(4)]
        fast = [Processor(f"f{i}", 2.0, 1e9) for i in range(4)]
        q_slow = QuotientGraph.from_partition(fig1_workflow, fig1_partition, slow)
        q_fast = QuotientGraph.from_partition(fig1_workflow, fig1_partition, fast)
        cs = Cluster(slow)
        cf = Cluster(fast)
        assert makespan(q_fast, cf) <= makespan(q_slow, cs)

    def test_empty_quotient(self, unit_cluster):
        from repro.workflow.graph import Workflow
        q = QuotientGraph(Workflow("empty"))
        assert makespan(q, unit_cluster) == 0.0

    def test_parallel_blocks_take_max_not_sum(self, fork_workflow, unit_cluster):
        blocks = [{"root"}] + [{f"leaf{i}"} for i in range(6)]
        q = QuotientGraph.from_partition(fork_workflow, blocks)
        # l(root) = 1 + max_i (1 + w_leaf_i) = 1 + 1 + 6
        assert makespan(q, unit_cluster) == pytest.approx(8.0)


class TestCriticalPathReconstruction:
    """Regressions for the argmax-child path walk.

    The seed re-matched ``l[current] - own`` against each child within a
    float tolerance and silently ``break``-ed when nothing matched, so a
    vertex whose own time dwarfs its edge terms truncated the path; it
    also priced edges with ``cluster.link_bandwidth`` regardless of the
    uniform-β shortcut :func:`bottom_weights` uses.
    """

    def test_huge_own_time_does_not_truncate(self):
        # own(a) = 1e16 absorbs the child term in floating point:
        # (own + best) - own == 0.0, which no child ever matched
        wf = Workflow("huge")
        wf.add_task("a", work=1e16, memory=1.0)
        wf.add_task("b", work=1.0, memory=1.0)
        wf.add_task("c", work=1.0, memory=1.0)
        wf.add_edge("a", "b", 1.0)
        wf.add_edge("b", "c", 1.0)
        procs = [Processor(f"p{i}", 1.0, 10.0) for i in range(3)]
        cluster = Cluster(procs)
        q = QuotientGraph.from_partition(wf, [{"a"}, {"b"}, {"c"}], procs)
        path = critical_path(q, cluster)
        assert len(path) == 3  # reaches the sink
        assert not q.succ[path[-1]]

    def test_large_values_pick_the_argmax_child_not_a_near_match(self):
        # with l ~ 1e12 the seed's relative tolerance admitted children
        # thousands of units away from the max; the walk must take the
        # argmax child exactly
        wf = Workflow("near-miss")
        wf.add_task("root", work=1e12, memory=1.0)
        wf.add_task("best", work=2000.0, memory=1.0)
        wf.add_task("near", work=1500.0, memory=1.0)
        wf.add_edge("root", "near", 1.0)  # adjacency order lists "near" first
        wf.add_edge("root", "best", 1.0)
        procs = [Processor(f"p{i}", 1.0, 10.0) for i in range(3)]
        cluster = Cluster(procs)
        q = QuotientGraph.from_partition(
            wf, [{"root"}, {"best"}, {"near"}], procs)
        path = critical_path(q, cluster)
        assert q.blocks[path[1]].tasks == {"best"}

    def test_heterogeneous_links_with_unassigned_endpoint(self):
        """Weights and path must share one edge-cost rule (Sec. 3.3)."""
        wf = Workflow("hetlinks")
        for name, work in [("a", 4.0), ("b", 1.0), ("c", 2.0)]:
            wf.add_task(name, work=work, memory=1.0)
        wf.add_edge("a", "b", 6.0)
        wf.add_edge("a", "c", 6.0)
        pa, pb = Processor("pa", 1.0, 10.0), Processor("pb", 1.0, 10.0)
        model = LinkBandwidth({("pa", "pb"): 3.0}, default_beta=1.0)
        cluster = Cluster([pa, pb], bandwidth_model=model)
        # c unassigned: its link falls back to the model's default (1.0),
        # so the path must go through c (6/1 + 2 > 6/3 + 1)
        q = QuotientGraph.from_partition(wf, [{"a"}, {"b"}, {"c"}],
                                         [pa, pb, None])
        l = bottom_weights(q, cluster)
        path = critical_path(q, cluster)
        a, b, c = list(q.blocks)
        assert l[a] == pytest.approx(4.0 + 6.0 / 1.0 + 2.0)
        assert path == [a, c]
        # the start vertex is the bottom-weight argmax, the walk follows
        # the same link rule bottom_weights used
        assert l[path[0]] == max(l.values())

    def test_path_realizes_the_makespan_on_every_step(self):
        """Invariant: l decreases along the path exactly by own + edge."""
        from repro.generators.families import generate_workflow
        from repro.partition.api import acyclic_partition
        wf = generate_workflow("genome", 60, seed=4)
        partition = acyclic_partition(wf, 6)
        procs = [Processor(f"p{i}", 1.0 + i, 1e9) for i in range(6)]
        cluster = Cluster(procs)
        q = QuotientGraph.from_partition(wf, partition, procs)
        l = bottom_weights(q, cluster)
        link_of = link_rule(cluster)
        path = critical_path(q, cluster)
        assert not q.succ[path[-1]]
        for u, v in zip(path, path[1:]):
            own = q.blocks[u].work / q.blocks[u].proc.speed
            edge = q.succ[u][v] / link_of(q.blocks[u].proc, q.blocks[v].proc)
            assert l[u] == pytest.approx(own + edge + l[v])
