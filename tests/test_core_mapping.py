"""Tests of the Mapping result type and the forward simulator."""

import pytest

from repro.core.mapping import BlockAssignment, Mapping, simulate_mapping
from repro.core.quotient import QuotientGraph
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.utils.errors import InvalidPartitionError


def _mapping(wf, cluster, blocks, procs, algorithm="test"):
    cache = RequirementCache(wf)
    assignments = []
    for tasks, proc in zip(blocks, procs):
        res = cache.requirement(tasks)
        assignments.append(BlockAssignment(
            tasks=frozenset(tasks), processor=proc,
            requirement=res.peak, traversal=res.order))
    return Mapping(wf, cluster, assignments, algorithm)


class TestValidation:
    def test_valid_mapping_passes(self, fig1_workflow, fig1_partition, unit_cluster):
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition,
                     unit_cluster.processors)
        m.validate()

    def test_unmapped_task_rejected(self, fig1_workflow, unit_cluster):
        m = _mapping(fig1_workflow, unit_cluster, [{1, 2, 3}],
                     unit_cluster.processors[:1])
        with pytest.raises(InvalidPartitionError, match="unmapped"):
            m.validate()

    def test_duplicate_processor_rejected(self, fig1_workflow, fig1_partition,
                                          unit_cluster):
        p = unit_cluster.processors[0]
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition, [p, p, p, p])
        with pytest.raises(InvalidPartitionError, match="same processor"):
            m.validate()

    def test_memory_violation_rejected(self, fig1_workflow, fig1_partition):
        tight = [Processor(f"p{i}", 1.0, 0.5) for i in range(4)]
        m = _mapping(fig1_workflow, Cluster(tight), fig1_partition, tight)
        with pytest.raises(InvalidPartitionError, match="memory"):
            m.validate()

    def test_cyclic_quotient_rejected(self, fig1_workflow, unit_cluster):
        blocks = [{1, 2, 3}, {4, 9}, {5}, {6, 7, 8}]
        m = _mapping(fig1_workflow, unit_cluster, blocks, unit_cluster.processors)
        with pytest.raises(InvalidPartitionError, match="cyclic"):
            m.validate()

    def test_understated_requirement_rejected(self, fig1_workflow, unit_cluster):
        cache = RequirementCache(fig1_workflow)
        res = cache.requirement(set(range(1, 10)))
        bad = BlockAssignment(tasks=frozenset(range(1, 10)),
                              processor=unit_cluster.processors[0],
                              requirement=res.peak / 2,  # lie about the peak
                              traversal=res.order)
        m = Mapping(fig1_workflow, unit_cluster, [bad])
        with pytest.raises(InvalidPartitionError, match="below actual"):
            m.validate()


class TestMakespanAndSimulation:
    def test_makespan_matches_fig1(self, fig1_workflow, fig1_partition, unit_cluster):
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition,
                     unit_cluster.processors)
        assert m.makespan() == pytest.approx(12.0)

    def test_simulation_equals_bottom_weight_makespan(self, fig1_workflow,
                                                      fig1_partition, unit_cluster):
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition,
                     unit_cluster.processors)
        assert simulate_mapping(m) == pytest.approx(m.makespan())

    def test_simulation_equality_on_generated_instances(self):
        """Forward simulation must agree with Eq. (1)-(2) on real outputs."""
        from repro.core.baseline import dag_het_mem
        from repro.experiments.instances import scaled_cluster_for
        from repro.generators.families import generate_workflow
        from repro.platform.presets import default_cluster
        for family in ("blast", "genome", "soykb"):
            wf = generate_workflow(family, 80, seed=7)
            cluster = scaled_cluster_for(wf, default_cluster())
            m = dag_het_mem(wf, cluster)
            assert simulate_mapping(m) == pytest.approx(m.makespan())


class TestAccessors:
    def test_block_of(self, fig1_workflow, fig1_partition, unit_cluster):
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition,
                     unit_cluster.processors)
        assert 5 in m.block_of(5).tasks
        with pytest.raises(KeyError):
            m.block_of(99)

    def test_summary_fields(self, fig1_workflow, fig1_partition, unit_cluster):
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition,
                     unit_cluster.processors)
        s = m.summary()
        assert s["n_blocks"] == 4.0
        assert s["makespan"] == pytest.approx(12.0)

    def test_from_quotient_requires_full_assignment(self, fig1_workflow,
                                                    fig1_partition, unit_cluster):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        cache = RequirementCache(fig1_workflow)
        with pytest.raises(InvalidPartitionError, match="no processor"):
            Mapping.from_quotient(q, unit_cluster, cache)
