"""Validation tests."""

import math

import pytest

from repro.utils.errors import CyclicWorkflowError
from repro.workflow.graph import Workflow
from repro.workflow.validation import WorkflowValidationError, validate_workflow


def test_valid_workflow_passes(fig1_workflow):
    validate_workflow(fig1_workflow)


def test_empty_workflow_rejected():
    with pytest.raises(WorkflowValidationError):
        validate_workflow(Workflow())


def test_cycle_rejected():
    wf = Workflow()
    wf.add_edge("a", "b")
    wf.add_edge("b", "a")
    with pytest.raises(CyclicWorkflowError):
        validate_workflow(wf)


def test_negative_work_rejected():
    wf = Workflow()
    wf.add_task("a", work=-1.0)
    with pytest.raises(WorkflowValidationError, match="work"):
        validate_workflow(wf)


def test_nan_memory_rejected():
    wf = Workflow()
    wf.add_task("a", memory=math.nan)
    with pytest.raises(WorkflowValidationError, match="memory"):
        validate_workflow(wf)


def test_infinite_edge_rejected():
    wf = Workflow()
    wf.add_edge("a", "b", math.inf)
    with pytest.raises(WorkflowValidationError, match="edge"):
        validate_workflow(wf)


def test_zero_work_allowed():
    """The paper's weight-1 default implies small works are fine; zero too."""
    wf = Workflow()
    wf.add_task("a", work=0.0)
    validate_workflow(wf)


def test_single_source_requirement(diamond_workflow):
    validate_workflow(diamond_workflow, require_single_source=True)
    diamond_workflow.add_task("orphan_source")
    diamond_workflow.add_edge("orphan_source", "t")
    with pytest.raises(WorkflowValidationError, match="single source"):
        validate_workflow(diamond_workflow, require_single_source=True)


def test_error_message_truncates_problem_list():
    wf = Workflow()
    for i in range(10):
        wf.add_task(f"t{i}", work=-1.0)
    with pytest.raises(WorkflowValidationError, match=r"\+5 more"):
        validate_workflow(wf)
