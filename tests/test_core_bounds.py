"""Tests of the makespan lower bounds."""

import pytest

from repro.core.baseline import dag_het_mem
from repro.core.bounds import (
    bottleneck_task_bound,
    bound_report,
    critical_path_bound,
    makespan_lower_bound,
    optimality_gap,
    work_bound,
)
from repro.core.heuristic import DagHetPartConfig, dag_het_part
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.platform.cluster import Cluster
from repro.platform.presets import default_cluster
from repro.platform.processor import Processor
from repro.workflow.graph import Workflow


class TestIndividualBounds:
    def test_work_bound(self, chain_workflow):
        cluster = Cluster([Processor("a", 2, 1e9), Processor("b", 3, 1e9)])
        assert work_bound(chain_workflow, cluster) == pytest.approx(10.0 / 5.0)

    def test_critical_path_bound_excludes_edges(self, chain_workflow):
        cluster = Cluster([Processor("a", 2, 1e9)])
        # path work = 10, no edge costs, speed 2
        assert critical_path_bound(chain_workflow, cluster) == pytest.approx(5.0)

    def test_bottleneck_respects_memory(self):
        wf = Workflow()
        wf.add_task("big", work=100.0, memory=50.0)
        fast_small = Processor("fast", 10.0, 10.0)  # cannot hold the task
        slow_big = Processor("slow", 1.0, 100.0)
        cluster = Cluster([fast_small, slow_big])
        # the task must run on the slow node: bound = 100/1
        assert bottleneck_task_bound(wf, cluster) == pytest.approx(100.0)

    def test_bottleneck_infinite_when_task_fits_nowhere(self):
        wf = Workflow()
        wf.add_task("huge", work=1.0, memory=1e6)
        cluster = Cluster([Processor("p", 1.0, 10.0)])
        assert bottleneck_task_bound(wf, cluster) == float("inf")

    def test_report_keys(self, diamond_workflow, unit_cluster):
        report = bound_report(diamond_workflow, unit_cluster)
        assert set(report) == {"work", "critical_path", "bottleneck_task",
                               "combined"}
        assert report["combined"] == max(report["work"], report["critical_path"],
                                         report["bottleneck_task"])


class TestBoundsAreValid:
    """No heuristic may ever beat a lower bound."""

    @pytest.mark.parametrize("family", ["blast", "genome", "soykb", "montage"])
    def test_both_heuristics_respect_bounds(self, family):
        from repro.utils.errors import NoFeasibleMappingError
        wf = generate_workflow(family, 80, seed=29)
        cluster = scaled_cluster_for(wf, default_cluster())
        lb = makespan_lower_bound(wf, cluster)
        checked = 0
        for algorithm in (dag_het_mem,
                          lambda w, c: dag_het_part(
                              w, c, DagHetPartConfig(k_prime_strategy="doubling"))):
            try:
                mapping = algorithm(wf, cluster)
            except NoFeasibleMappingError:
                continue  # legitimate outcome on memory-tight instances
            assert mapping.makespan() >= lb - 1e-9
            checked += 1
        assert checked >= 1

    def test_optimality_gap_at_least_one(self):
        wf = generate_workflow("bwa", 60, seed=31)
        cluster = scaled_cluster_for(wf, default_cluster())
        mapping = dag_het_part(wf, cluster,
                               DagHetPartConfig(k_prime_strategy="doubling"))
        assert optimality_gap(mapping) >= 1.0 - 1e-9

    def test_single_task_gap_is_exact(self):
        wf = Workflow()
        wf.add_task("only", work=10.0, memory=1.0)
        proc = Processor("p", 2.0, 100.0)
        cluster = Cluster([proc])
        mapping = dag_het_mem(wf, cluster)
        assert optimality_gap(mapping) == pytest.approx(1.0)
