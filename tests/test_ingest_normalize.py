"""Validation-gate tests: assembler errors, scaling, property round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest import (
    NormalizeOptions,
    WorkflowAssembler,
    ingest_text,
    normalize_workflow,
    workflow_fingerprint,
    workflow_stats,
)
from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow
from repro.workflow.io import workflow_from_dict, workflow_to_dict


class TestAssembler:
    def test_duplicate_id_with_location(self):
        asm = WorkflowAssembler("w", path="f.json")
        asm.add_task("a")
        with pytest.raises(IngestError, match="f.json:7.*duplicate"):
            asm.add_task("a", line=7)

    def test_unknown_endpoint_strict(self):
        asm = WorkflowAssembler("w")
        asm.add_task("a")
        with pytest.raises(IngestError, match="unknown task 'b'"):
            asm.add_edge("a", "b")

    def test_implicit_endpoints_when_allowed(self):
        asm = WorkflowAssembler("w", allow_implicit_tasks=True)
        asm.add_edge("a", "b", 2.0)
        wf = asm.finish()
        assert wf.work("a") == 1.0
        assert wf.edge_cost("a", "b") == 2.0

    def test_self_loop_rejected_either_way(self):
        asm = WorkflowAssembler("w", allow_implicit_tasks=True)
        with pytest.raises(IngestError, match="self-loop"):
            asm.add_edge("a", "a")

    def test_conflicting_weight_redefinition(self):
        asm = WorkflowAssembler("w")
        asm.add_task("a", 1.0)
        asm.set_weights("a", work=5.0)
        asm.set_weights("a", work=5.0)  # identical is fine
        with pytest.raises(IngestError, match="conflicting work"):
            asm.set_weights("a", work=6.0)


class TestNormalize:
    def test_scaling_knobs(self):
        wf = Workflow("w")
        wf.add_task("a", 2.0, 4.0)
        wf.add_task("b", 3.0, 0.0)
        wf.add_edge("a", "b", 10.0)
        out = normalize_workflow(wf, NormalizeOptions(
            work_scale=2.0, cost_scale=0.1, memory_scale=0.5))
        assert out.work("a") == 4.0
        assert out.memory("a") == 2.0
        assert out.edge_cost("a", "b") == 1.0

    def test_ids_interned_to_strings(self):
        wf = Workflow("w")
        wf.add_task(1, 1.0, 0.0)
        wf.add_task(2, 1.0, 0.0)
        wf.add_edge(1, 2, 0.0)
        out = normalize_workflow(wf)
        assert sorted(out.tasks()) == ["1", "2"]

    def test_intern_collision_rejected(self):
        wf = Workflow("w")
        wf.add_task(1)
        wf.add_task("1")
        with pytest.raises(IngestError, match="collide"):
            normalize_workflow(wf)

    def test_cycle_rejected_with_members(self):
        wf = Workflow("w")
        for t in "abc":
            wf.add_task(t)
        wf.add_edge("a", "b")
        wf.add_edge("b", "c")
        wf.add_edge("c", "a")
        with pytest.raises(IngestError, match="cycle"):
            normalize_workflow(wf)

    def test_empty_workflow_rejected(self):
        with pytest.raises(IngestError, match="no tasks"):
            normalize_workflow(Workflow("w"))

    def test_nan_weight_rejected(self):
        wf = Workflow("w")
        wf.add_task("a", float("nan"), 0.0)
        with pytest.raises(IngestError, match="invalid work"):
            normalize_workflow(wf)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="positive finite"):
            NormalizeOptions(work_scale=0.0)
        with pytest.raises(ValueError, match="positive finite"):
            NormalizeOptions(cost_scale=float("inf"))


class TestStrictDictPaths:
    def test_duplicate_task_id_names_offender(self):
        payload = {"tasks": [{"id": "x"}, {"id": "x"}], "edges": []}
        with pytest.raises(IngestError, match="'x'"):
            workflow_from_dict(payload)

    def test_unknown_edge_endpoint_names_offender(self):
        payload = {"tasks": [{"id": "a"}],
                   "edges": [{"source": "a", "target": "ghost"}]}
        with pytest.raises(IngestError, match="ghost"):
            workflow_from_dict(payload)

    def test_path_context_in_message(self):
        payload = {"tasks": [{"id": "a"}, {"id": "a"}]}
        with pytest.raises(IngestError, match="wf.json"):
            workflow_from_dict(payload, path="wf.json")

    def test_scalar_ids_preserved_no_interning(self):
        payload = {"tasks": [{"id": 1}, {"id": 2}],
                   "edges": [{"source": 1, "target": 2, "cost": 3.0}]}
        wf = workflow_from_dict(payload)
        assert wf.edge_cost(1, 2) == 3.0


# ----------------------------------------------------------------------
# hypothesis: random DAGs through the gate
# ----------------------------------------------------------------------
_weights = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                     allow_infinity=False)


@st.composite
def dags(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    wf = Workflow(draw(st.sampled_from(["wf", "trace", "pipeline"])))
    ids = [f"t{i}" for i in range(n)]
    for tid in ids:
        wf.add_task(tid, draw(_weights), draw(_weights))
    # edges only forward in id order: acyclic by construction
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                wf.add_edge(ids[i], ids[j], draw(_weights))
    return wf


@settings(max_examples=40, deadline=None)
@given(dags())
def test_normalization_idempotent(wf):
    once = normalize_workflow(wf)
    twice = normalize_workflow(once)
    assert workflow_to_dict(twice) == workflow_to_dict(once)
    assert workflow_fingerprint(twice) == workflow_fingerprint(once)


@settings(max_examples=40, deadline=None)
@given(dags())
def test_ingest_serialize_reingest_fixed_point(wf):
    normalized = normalize_workflow(wf)
    text = json.dumps(workflow_to_dict(normalized))
    back = ingest_text(text, fmt="json")
    assert workflow_to_dict(back) == workflow_to_dict(normalized)


@settings(max_examples=40, deadline=None)
@given(dags())
def test_stats_are_sane(wf):
    stats = workflow_stats(wf)
    assert stats["n_tasks"] == wf.n_tasks
    assert stats["n_edges"] == wf.n_edges
    assert 1 <= stats["depth"] <= wf.n_tasks
    assert stats["total_work"] == pytest.approx(
        sum(wf.work(u) for u in wf.tasks()))


@settings(max_examples=40, deadline=None)
@given(dags(), st.sampled_from([0.5, 2.0, 10.0]))
def test_fingerprint_ignores_insertion_order_not_content(wf, scale):
    # re-adding tasks/edges in reverse order: same fingerprint
    reordered = Workflow(wf.name)
    for u in reversed(list(wf.tasks())):
        reordered.add_task(u, wf.work(u), wf.memory(u))
    for u, v, c in reversed(list(wf.edges())):
        reordered.add_edge(u, v, c)
    assert workflow_fingerprint(reordered) == workflow_fingerprint(wf)
    # but scaling any weight changes it (content-sensitivity)
    if wf.n_tasks and scale != 1.0:
        scaled = normalize_workflow(wf, NormalizeOptions(work_scale=scale))
        if any(wf.work(u) > 0 for u in wf.tasks()):
            assert workflow_fingerprint(scaled) != workflow_fingerprint(wf)
