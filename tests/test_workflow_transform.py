"""Tests for workflow transformations."""

import pytest

from repro.workflow.graph import Workflow
from repro.workflow.transform import (
    induced_subworkflow,
    merge_linear_chains,
    normalize_memory_to,
    relabel_tasks,
    scale_memory,
    scale_work,
)


class TestScaling:
    def test_scale_work_4x(self, diamond_workflow):
        scaled = scale_work(diamond_workflow, 4.0)
        for u in diamond_workflow.tasks():
            assert scaled.work(u) == 4.0 * diamond_workflow.work(u)
            assert scaled.memory(u) == diamond_workflow.memory(u)

    def test_scale_memory_scales_edges_too(self, diamond_workflow):
        scaled = scale_memory(diamond_workflow, 0.5)
        assert scaled.memory("x") == 2.0
        assert scaled.edge_cost("s", "x") == 1.0
        assert scaled.work("x") == diamond_workflow.work("x")

    def test_normalize_memory_noop_when_fits(self, diamond_workflow):
        out = normalize_memory_to(diamond_workflow, 100.0)
        assert out.max_task_requirement() == diamond_workflow.max_task_requirement()

    def test_normalize_memory_scales_down(self, diamond_workflow):
        out = normalize_memory_to(diamond_workflow, 4.5)
        assert out.max_task_requirement() == pytest.approx(4.5)

    def test_normalize_preserves_ratios(self, diamond_workflow):
        out = normalize_memory_to(diamond_workflow, 4.5)
        orig = [diamond_workflow.task_requirement(u) for u in diamond_workflow.tasks()]
        new = [out.task_requirement(u) for u in out.tasks()]
        factor = new[0] / orig[0]
        for o, n in zip(orig, new):
            assert n == pytest.approx(o * factor)


class TestSubworkflow:
    def test_induced_keeps_internal_edges_only(self, fig1_workflow):
        sub = induced_subworkflow(fig1_workflow, {6, 7, 8})
        assert sub.n_tasks == 3
        assert sorted((u, v) for u, v, _ in sub.edges()) == [(6, 7), (6, 8), (7, 8)]

    def test_induced_preserves_weights(self, diamond_workflow):
        sub = induced_subworkflow(diamond_workflow, {"x", "t"})
        assert sub.work("x") == 2.0
        assert sub.edge_cost("x", "t") == 3.0


class TestRelabel:
    def test_relabel_with_mapping(self, chain_workflow):
        out = relabel_tasks(chain_workflow, mapping={"a": 0, "b": 1, "c": 2, "d": 3})
        assert out.has_edge(0, 1)
        assert out.work(3) == 4.0

    def test_relabel_with_key(self, chain_workflow):
        out = relabel_tasks(chain_workflow, key=str.upper)
        assert out.has_edge("A", "B")

    def test_relabel_collision_raises(self, chain_workflow):
        with pytest.raises(ValueError):
            relabel_tasks(chain_workflow, key=lambda u: "same")

    def test_requires_exactly_one_argument(self, chain_workflow):
        with pytest.raises(ValueError):
            relabel_tasks(chain_workflow)


class TestChainMerge:
    def test_merges_linear_chain(self):
        wf = Workflow()
        wf.add_task("a", work=1, memory=1)
        wf.add_task("b", work=2, memory=2)
        wf.add_task("c", work=3, memory=3)
        wf.add_edge("a", "b", 5.0)
        wf.add_edge("b", "c", 7.0)
        out = merge_linear_chains(wf)
        assert out.n_tasks == 1
        (u,) = out.tasks()
        assert out.work(u) == 6.0
        # chain-internal file sizes are folded into memory
        assert out.memory(u) == 1 + 2 + 3 + 5 + 7

    def test_does_not_merge_across_forks(self, diamond_workflow):
        out = merge_linear_chains(diamond_workflow)
        assert out.n_tasks == 4  # nothing is a pure chain here

    def test_protect_set(self):
        wf = Workflow()
        wf.add_edge("a", "b", 1.0)
        out = merge_linear_chains(wf, protect={"b"})
        assert out.n_tasks == 2
