"""Tests of the random layered DAG generator."""

import pytest

from repro.generators.random_dag import random_layered_dag, random_workflow
from repro.workflow.validation import validate_workflow


def test_exact_task_count():
    for n in (1, 7, 50):
        assert random_layered_dag(n, seed=0).n_tasks == n


def test_acyclic():
    for seed in range(5):
        wf = random_layered_dag(60, seed=seed)
        assert wf.is_acyclic()


def test_connected_mode_gives_parents():
    wf = random_layered_dag(80, seed=3, connect=True)
    levels = {}
    for u in wf.topological_order():
        preds = list(wf.parents(u))
        levels[u] = 0 if not preds else 1 + max(levels[p] for p in preds)
    sources = wf.sources()
    # every source sits in the first layer (no stranded downstream tasks)
    for s in sources:
        assert s.startswith("t0:")


def test_deterministic():
    a = random_layered_dag(40, seed=9)
    b = random_layered_dag(40, seed=9)
    assert sorted((u, v) for u, v, _ in a.edges()) == \
        sorted((u, v) for u, v, _ in b.edges())


def test_random_workflow_weighted():
    wf = random_workflow(30, seed=1)
    validate_workflow(wf)
    assert all(wf.work(u) >= 1.0 for u in wf.tasks())


def test_invalid_size():
    with pytest.raises(ValueError):
        random_layered_dag(0)
