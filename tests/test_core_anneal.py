"""Tests of the simulated-annealing refiner and its registered scheduler."""

import dataclasses
import math

import pytest

from repro.api import AnnealConfig, ScheduleRequest, solve
from repro.core.anneal import AnnealStats, anneal_refine
from repro.core.evaluator import MakespanEvaluator
from repro.core.heuristic import DagHetPartConfig, dag_het_part_sweep
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.memdag.requirement import RequirementCache
from repro.platform.presets import default_cluster
from repro.workflow.graph import Workflow


def _seeded_state(wf, cluster):
    """The state the registered scheduler refines: best sweep mapping."""
    cache = RequirementCache(wf)
    outcome = dag_het_part_sweep(wf, cluster, cache=cache)
    q = outcome.mapping.to_quotient()
    return q, cache, outcome.mapping.makespan()


class TestAnnealConfig:
    def test_defaults_valid(self):
        AnnealConfig()

    @pytest.mark.parametrize("kwargs", [
        {"iterations": -1},
        {"restarts": 0},
        {"t0": 0.0},
        {"t0_fraction": 0.0},
        {"t_final_fraction": 0.0},
        {"t_final_fraction": 1.5},
        {"schedule": "quadratic"},
        {"move_fraction": -0.1},
        {"move_fraction": 1.1},
        {"time_budget": 0.0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AnnealConfig(**kwargs)


class TestAnnealRefine:
    def test_never_worse_than_seed_and_deterministic(self):
        wf = generate_workflow("genome", 90, seed=4)
        cluster = scaled_cluster_for(wf, default_cluster())
        config = AnnealConfig(seed=5, iterations=600, restarts=2)

        finals = []
        for _ in range(2):
            q, cache, seed_mu = _seeded_state(wf, cluster)
            stats = anneal_refine(q, cluster, cache, config=config)
            assert stats.initial_makespan == seed_mu
            assert stats.final_makespan <= seed_mu
            finals.append((stats.final_makespan, stats.trials,
                           stats.accepted, stats.improved))
        assert finals[0] == finals[1]  # bit-for-bit reproducible

    def test_different_seeds_may_differ_but_all_bounded_by_seed(self):
        wf = generate_workflow("blast", 80, seed=2)
        cluster = scaled_cluster_for(wf, default_cluster())
        for seed in (0, 1, 2):
            q, cache, seed_mu = _seeded_state(wf, cluster)
            stats = anneal_refine(q, cluster, cache,
                                  config=AnnealConfig(seed=seed, iterations=300))
            assert stats.final_makespan <= seed_mu

    def test_zero_full_recomputes_during_refinement(self):
        wf = generate_workflow("soykb", 70, seed=1)
        cluster = scaled_cluster_for(wf, default_cluster())
        q, cache, _ = _seeded_state(wf, cluster)
        evaluator = MakespanEvaluator(q, cluster)  # one init pass
        anneal_refine(q, cluster, cache,
                      config=AnnealConfig(seed=0, iterations=500),
                      evaluator=evaluator)
        assert evaluator.full_recomputes == 1  # only the constructor's
        assert evaluator.delta_syncs > 0

    def test_refined_state_is_the_reported_best(self):
        wf = generate_workflow("genome", 60, seed=9)
        cluster = scaled_cluster_for(wf, default_cluster())
        q, cache, _ = _seeded_state(wf, cluster)
        stats = anneal_refine(q, cluster, cache,
                              config=AnnealConfig(seed=3, iterations=400))
        # the quotient left behind realizes exactly the reported makespan
        evaluator = MakespanEvaluator(q, cluster)
        assert evaluator.makespan() == stats.final_makespan

    def test_zero_iterations_is_identity(self):
        wf = generate_workflow("blast", 40, seed=0)
        cluster = scaled_cluster_for(wf, default_cluster())
        q, cache, seed_mu = _seeded_state(wf, cluster)
        before = {bid: blk.proc for bid, blk in q.blocks.items()}
        stats = anneal_refine(q, cluster, cache,
                              config=AnnealConfig(iterations=0))
        assert stats.final_makespan == seed_mu
        assert stats.trials == stats.accepted == 0
        assert {bid: blk.proc for bid, blk in q.blocks.items()} == before

    def test_stats_accounting(self):
        wf = generate_workflow("bwa", 60, seed=6)
        cluster = scaled_cluster_for(wf, default_cluster())
        q, cache, _ = _seeded_state(wf, cluster)
        stats = anneal_refine(q, cluster, cache,
                              config=AnnealConfig(seed=1, iterations=300,
                                                  restarts=3))
        assert isinstance(stats, AnnealStats)
        assert stats.restarts == 3
        assert stats.accepted <= stats.trials
        assert stats.moves_applied + stats.swaps_applied == stats.accepted


class TestAnnealScheduler:
    def test_solve_reports_seed_and_never_worse(self):
        wf = generate_workflow("genome", 80, seed=3)
        cluster = scaled_cluster_for(wf, default_cluster())
        result = solve(ScheduleRequest(
            workflow=wf, cluster=cluster, algorithm="anneal",
            config=AnnealConfig(seed=2, iterations=400), validate=True))
        assert result.success
        assert result.algorithm == "Anneal"
        seed_mu = result.extra["anneal_seed_makespan"]
        assert result.makespan <= seed_mu
        assert result.k_prime is not None and result.sweep
        result.mapping.validate()

    def test_same_seed_same_result_across_solves(self):
        wf = generate_workflow("blast", 60, seed=7)
        cluster = scaled_cluster_for(wf, default_cluster())
        request = ScheduleRequest(workflow=wf, cluster=cluster,
                                  algorithm="anneal",
                                  config=AnnealConfig(seed=4, iterations=300))
        a, b = solve(request), solve(request)
        assert a.makespan == b.makespan
        assert a.tags == b.tags

    def test_wrong_config_type_raises(self):
        wf = generate_workflow("blast", 24, seed=0)
        with pytest.raises(TypeError):
            solve(ScheduleRequest(workflow=wf, cluster=default_cluster(),
                                  algorithm="anneal",
                                  config=DagHetPartConfig()))

    def test_empty_workflow(self):
        result = solve(ScheduleRequest(workflow=Workflow("empty"),
                                       cluster=default_cluster(),
                                       algorithm="anneal"))
        assert result.success
        assert result.makespan == 0.0
        assert result.n_blocks == 0

    def test_infeasible_platform_surfaces_seed_failure(self):
        # the seed sweep fails -> the annealer has nothing to refine and
        # the failure flows through the envelope unchanged
        from repro.platform.cluster import Cluster
        from repro.platform.processor import Processor
        wf = generate_workflow("blast", 24, seed=1)
        tiny = Cluster([Processor("p0", 1.0, 0.001)])
        result = solve(ScheduleRequest(workflow=wf, cluster=tiny,
                                       algorithm="anneal"))
        assert not result.success
        assert result.failure.kind == "NoFeasibleMappingError"
        assert math.isinf(result.makespan)

    def test_config_fingerprint_fields_serializable(self):
        # the scenario/cache layers rely on asdict() round-tripping
        config = AnnealConfig(seed=3, iterations=10)
        fields = dataclasses.asdict(config)
        assert AnnealConfig(**fields) == config
