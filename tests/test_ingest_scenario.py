"""End-to-end ingestion: scenario sources, checksums, CLI, cache reuse."""

import json
from pathlib import Path

import pytest

from repro.api import (
    FileWorkflowSource,
    ScenarioSpec,
    TemplateWorkflowSource,
    open_cache,
    run_scenario,
)
from repro.api.scenario import AlgorithmSpec, PlatformAxis, source_from_dict
from repro.cli import main
from repro.ingest import ingest_path, workflow_fingerprint

TRACES = Path(__file__).resolve().parent.parent / "examples" / "traces"


class TestFileSource:
    def test_any_format_via_sniffing(self):
        src = FileWorkflowSource(path=str(TRACES / "montage.dax"))
        (inst,) = src.instances()
        assert inst.workflow.n_tasks == 10
        assert inst.category == "file"

    def test_forced_format(self):
        src = FileWorkflowSource(path=str(TRACES / "cyclesweep.csv"),
                                 format="edgelist")
        (inst,) = src.instances()
        assert inst.workflow.n_tasks == 7

    def test_checksum_pin_accepts_matching(self):
        path = str(TRACES / "rnaseq.dot")
        pin = workflow_fingerprint(ingest_path(path))
        src = FileWorkflowSource(path=path, checksum=pin)
        (inst,) = src.instances()
        assert inst.workflow.name == "rnaseq (salmon)"

    def test_checksum_pin_rejects_edited_trace(self, tmp_path):
        copy = tmp_path / "t.dot"
        copy.write_text((TRACES / "rnaseq.dot").read_text())
        pin = workflow_fingerprint(ingest_path(str(copy)))
        copy.write_text(copy.read_text().replace("work=4.5", "work=9.9"))
        src = FileWorkflowSource(path=str(copy), checksum=pin)
        with pytest.raises(ValueError, match="checksum mismatch"):
            list(src.instances())

    def test_round_trip_through_dict(self):
        src = FileWorkflowSource(path="x.dax", format="dax", checksum="abc",
                                 category="trace", family="montage")
        assert source_from_dict(src.to_dict()) == src

    def test_name_is_path_independent_for_cache_keys(self, tmp_path):
        # two copies of the same trace in different directories must
        # produce identical instances (same request fingerprint)
        copy = tmp_path / "montage.dax"
        copy.write_text((TRACES / "montage.dax").read_text())
        (a,) = FileWorkflowSource(path=str(TRACES / "montage.dax")).instances()
        (b,) = FileWorkflowSource(path=str(copy)).instances()
        assert a.workflow.name == b.workflow.name == "montage"
        assert workflow_fingerprint(a.workflow) == \
            workflow_fingerprint(b.workflow)


class TestTemplateSource:
    def test_inline_data(self):
        src = TemplateWorkflowSource(
            path=str(TRACES / "variant_calling.tpl"),
            data={"cohort": "pair", "samples": [
                {"id": "a", "reads": 1, "depth": 1},
                {"id": "b", "reads": 2, "depth": 2}]})
        (inst,) = src.instances()
        assert inst.workflow.name == "variant-calling-pair"
        assert inst.workflow.n_tasks == 9
        assert inst.category == "template"

    def test_data_path(self):
        src = TemplateWorkflowSource(
            path=str(TRACES / "variant_calling.tpl"),
            data_path=str(TRACES / "variant_calling.data.json"))
        (inst,) = src.instances()
        assert inst.workflow.n_tasks == 12

    def test_both_data_and_data_path_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            TemplateWorkflowSource(path="x.tpl", data={"a": 1},
                                   data_path="d.json")

    def test_round_trip_preserves_nested_data(self):
        src = TemplateWorkflowSource(
            path="x.tpl", data={"samples": [{"id": "a", "sizes": [1, 2]}]})
        back = source_from_dict(json.loads(json.dumps(src.to_dict())))
        assert back == src
        assert back.data["samples"][0]["sizes"] == [1, 2]


class TestScenarioCacheReuse:
    def test_second_run_all_hits(self, tmp_path):
        spec = ScenarioSpec(
            name="ingest-cache",
            workflows=(
                FileWorkflowSource(path=str(TRACES / "rnaseq.dot")),
                TemplateWorkflowSource(
                    path=str(TRACES / "variant_calling.tpl"),
                    data_path=str(TRACES / "variant_calling.data.json")),
            ),
            platforms=(PlatformAxis(preset="default", bandwidths=(1.0,)),),
            algorithms=(AlgorithmSpec("heftlist"),),
        )
        cache_uri = f"sqlite:///{tmp_path / 'c.db'}"
        cache = open_cache(cache_uri)
        try:
            list(run_scenario(spec, cache=cache))
            first = dict(cache.stats())
            list(run_scenario(spec, cache=cache))
            second = dict(cache.stats())
        finally:
            cache.close()
        assert first["misses"] == 2
        assert second["hits"] == first["hits"] + 2
        assert second["misses"] == first["misses"]  # zero new misses


class TestCliIngest:
    def test_summary_line(self, capsys):
        rc = main(["ingest", str(TRACES / "montage.dax")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "format=dax" in out
        assert "fingerprint=" in out

    def test_stats_flag(self, capsys):
        rc = main(["ingest", str(TRACES / "epigenomics.wfformat.json"),
                   "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "depth" in out
        assert "wfcommons" in out

    def test_output_writes_canonical_json(self, tmp_path, capsys):
        out_path = tmp_path / "wf.json"
        rc = main(["ingest", str(TRACES / "cyclesweep.csv"),
                   "--format", "edgelist", "-o", str(out_path)])
        assert rc == 0
        data = json.loads(out_path.read_text())
        assert len(data["tasks"]) == 7

    def test_template_with_data(self, capsys):
        rc = main(["ingest", str(TRACES / "variant_calling.tpl"),
                   "--data", str(TRACES / "variant_calling.data.json")])
        assert rc == 0
        assert "variant-calling-trio" in capsys.readouterr().out

    def test_validate_rejects_broken_fixture(self, capsys):
        rc = main(["ingest", str(TRACES / "broken_duplicate.json"),
                   "--validate"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "duplicate task id" in err

    def test_validate_accepts_good_sample(self, capsys):
        rc = main(["ingest", str(TRACES / "rnaseq.dot"), "--validate"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_unit_scaling_flags(self, capsys):
        rc = main(["ingest", str(TRACES / "epigenomics.wfformat.json"),
                   "--memory-scale", str(1.0 / 2 ** 30), "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        # 1 GiB peak becomes 1.0 abstract units
        import re
        assert re.search(r"memory_max\s*: 1\n", out)

    def test_unknown_format_lists_valid(self, capsys):
        rc = main(["ingest", str(TRACES / "rnaseq.dot"),
                   "--format", "nope"])
        assert rc == 1
        assert "wfcommons" in capsys.readouterr().err

    def test_missing_file_is_error_not_traceback(self, capsys):
        rc = main(["ingest", "no/such/file.dot"])
        assert rc == 1
        assert "cannot read" in capsys.readouterr().err

    def test_repeated_ingest_output_bit_identical(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for out in (a, b):
            rc = main(["ingest", str(TRACES / "montage.dax"),
                       "-o", str(out)])
            assert rc == 0
        assert a.read_bytes() == b.read_bytes()

    def test_schedule_accepts_ingested_formats(self, capsys):
        rc = main(["schedule", "--workflow", str(TRACES / "rnaseq.dot")])
        assert rc == 0
        assert "makespan" in capsys.readouterr().out
