"""Tests of the DagHetMem baseline (Section 4.1)."""

import pytest

from repro.core.baseline import dag_het_mem
from repro.generators.families import generate_workflow
from repro.memdag.traversal import memdag_traversal
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.utils.errors import NoFeasibleMappingError
from repro.workflow.graph import Workflow


class TestSingleProcessorCase:
    def test_fits_on_one_processor(self, fig1_workflow):
        cluster = Cluster([Processor("big", 2.0, 1000.0),
                           Processor("small", 8.0, 1.0)])
        m = dag_het_mem(fig1_workflow, cluster)
        m.validate()
        assert m.n_blocks == 1
        # the whole DAG goes to the largest-memory processor
        assert m.assignments[0].processor.name == "big"
        assert m.makespan() == pytest.approx(9.0 / 2.0)


def _accumulating_workflow(n, side_cost=3.0, chain_cost=0.5, memory=1.0):
    """Chain t0..t{n-1} -> sink where every task also feeds the sink.

    The side edges stay live until the sink runs, so memory genuinely
    accumulates along any traversal — unlike a plain chain, where the
    model frees each task's memory on completion.
    """
    wf = Workflow()
    wf.add_task("sink", work=1.0, memory=memory)
    for i in range(n):
        wf.add_task(i, work=1.0, memory=memory)
        if i:
            wf.add_edge(i - 1, i, chain_cost)
        wf.add_edge(i, "sink", side_cost)
    return wf


class TestPacking:
    def test_splits_when_memory_tight(self):
        # usage grows by ~0.95 per task; the sink alone needs ~9.6 and still
        # fits, but the accumulated tail forces at least one block split
        wf = _accumulating_workflow(10, side_cost=0.95, chain_cost=0.25, memory=0.1)
        procs = [Processor(f"p{j}", 1.0, 9.7) for j in range(4)]
        m = dag_het_mem(wf, Cluster(procs))
        m.validate()
        assert m.n_blocks >= 2

    def test_blocks_follow_memory_order(self):
        wf = Workflow()
        for i in range(8):
            wf.add_task(i, work=1.0, memory=5.0)
            if i:
                wf.add_edge(i - 1, i, 0.5)
        procs = [Processor("small", 1.0, 7.0), Processor("large", 1.0, 12.0),
                 Processor("mid", 1.0, 9.0)]
        m = dag_het_mem(wf, Cluster(procs))
        m.validate()
        used = [a.processor.name for a in m.assignments]
        # first block lands on the largest memory, then decreasing
        assert used[0] == "large"
        if len(used) > 1:
            assert used[1] == "mid"

    def test_requirements_within_memory(self):
        wf = generate_workflow("epigenomics", 120, seed=5)
        from repro.experiments.instances import scaled_cluster_for
        from repro.platform.presets import default_cluster
        cluster = scaled_cluster_for(wf, default_cluster())
        m = dag_het_mem(wf, cluster)
        m.validate()
        for a in m.assignments:
            assert a.requirement <= a.processor.memory + 1e-9


class TestFailureModes:
    def test_task_too_big_for_any_processor(self):
        wf = Workflow()
        wf.add_task("huge", work=1.0, memory=100.0)
        cluster = Cluster([Processor("p", 1.0, 50.0)])
        with pytest.raises(NoFeasibleMappingError) as exc:
            dag_het_mem(wf, cluster)
        assert exc.value.unplaced_tasks == 1

    def test_not_enough_processors(self):
        wf = _accumulating_workflow(12)
        # each block holds ~3 tasks; two processors cannot host 13 tasks
        cluster = Cluster([Processor("p0", 1.0, 10.0),
                           Processor("p1", 1.0, 10.0)])
        with pytest.raises(NoFeasibleMappingError) as exc:
            dag_het_mem(wf, cluster)
        assert exc.value.unplaced_tasks > 0

    def test_empty_workflow(self, unit_cluster):
        m = dag_het_mem(Workflow("empty"), unit_cluster)
        assert m.n_blocks == 0
        assert m.makespan() == 0.0


class TestQuotientStructure:
    def test_traversal_slices_give_acyclic_quotient(self):
        """Contiguous traversal slices always induce an acyclic quotient."""
        for family in ("blast", "montage", "genome"):
            wf = generate_workflow(family, 100, seed=11)
            from repro.experiments.instances import scaled_cluster_for
            from repro.platform.presets import default_cluster
            cluster = scaled_cluster_for(wf, default_cluster())
            m = dag_het_mem(wf, cluster)
            m.validate()  # includes quotient acyclicity

    def test_block_tasks_are_traversal_prefixes(self, chain_workflow):
        """On a chain, blocks must be consecutive slices."""
        procs = [Processor(f"p{j}", 1.0, 11.0) for j in range(4)]
        m = dag_het_mem(chain_workflow, Cluster(procs))
        order = list(memdag_traversal(chain_workflow).order)
        positions = []
        for a in m.assignments:
            idx = sorted(order.index(u) for u in a.tasks)
            assert idx == list(range(idx[0], idx[-1] + 1))
            positions.append(idx[0])
        assert positions == sorted(positions)
