"""Tests of Step 3 (MergeUnassignedToAssigned / FindMSOptMerge)."""

import pytest

from repro.core.makespan import makespan
from repro.core.merging import (
    find_ms_opt_merge,
    merge_unassigned_to_assigned,
)
from repro.core.quotient import QuotientGraph
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.workflow.graph import Workflow


def _chain_quotient(n_blocks=4, assigned_mask=None, memory=100.0):
    """Chain workflow split into singleton blocks, some assigned."""
    wf = Workflow()
    for i in range(n_blocks):
        wf.add_task(i, work=float(i + 1), memory=1.0)
        if i:
            wf.add_edge(i - 1, i, 1.0)
    procs = [Processor(f"p{i}", 1.0, memory) for i in range(n_blocks)]
    cluster = Cluster(procs)
    mask = assigned_mask or [True] * n_blocks
    q = QuotientGraph.from_partition(
        wf, [{i} for i in range(n_blocks)],
        [procs[i] if mask[i] else None for i in range(n_blocks)])
    return wf, cluster, q


class TestFindMsOptMerge:
    def test_finds_feasible_neighbor(self):
        wf, cluster, q = _chain_quotient(3, [True, False, True])
        cache = RequirementCache(wf)
        nu = q.block_of(1)
        mu, partner, third = find_ms_opt_merge(q, nu, q.assigned_ids(), cluster, cache)
        assert partner in {q.block_of(0), q.block_of(2)}
        assert third is None
        # graph unchanged
        assert len(q) == 3
        assert q.blocks[nu].proc is None

    def test_respects_memory(self):
        # a fans out to c1, c2: merging a with either child retains the
        # other child's input file, pushing the union peak over memory
        wf = Workflow()
        wf.add_task("a", work=1.0, memory=1.0)
        wf.add_task("c1", work=1.0, memory=3.0)
        wf.add_task("c2", work=1.0, memory=3.0)
        wf.add_edge("a", "c1", 4.0)
        wf.add_edge("a", "c2", 4.0)
        p0, p1 = Processor("p0", 1.0, 10.0), Processor("p1", 1.0, 10.0)
        cluster = Cluster([p0, p1])
        q = QuotientGraph.from_partition(
            wf, [{"a"}, {"c1"}, {"c2"}], [None, p0, p1])
        cache = RequirementCache(wf)
        # singletons fit (r(a)=9, r(c)=7) but any union peaks at 11 > 10
        nu = q.block_of("a")
        mu, partner, third = find_ms_opt_merge(q, nu, q.assigned_ids(), cluster, cache)
        assert partner is None

    def test_candidate_restriction(self):
        wf, cluster, q = _chain_quotient(3, [True, False, True])
        cache = RequirementCache(wf)
        nu = q.block_of(1)
        only_right = {q.block_of(2)}
        _, partner, _ = find_ms_opt_merge(q, nu, only_right, cluster, cache)
        assert partner == q.block_of(2)

    def test_two_cycle_repaired_by_third_merge(self, fig1_workflow):
        """Merging across a diamond creates a 2-cycle; the third vertex heals it."""
        procs = [Processor(f"p{i}", 1.0, 1e9) for i in range(4)]
        cluster = Cluster(procs)
        # blocks: {1,2,3}, {4,9} unassigned, {5}, {6,7,8}; merging {4,9}
        # with {6,7,8} is feasible only together with the 2-cycle partner
        q = QuotientGraph.from_partition(
            fig1_workflow,
            [{1, 2, 3}, {4}, {5}, {6, 7, 8}, {9}],
            [procs[0], None, procs[1], procs[2], procs[3]])
        cache = RequirementCache(fig1_workflow)
        nu = q.block_of(4)
        mu, partner, third = find_ms_opt_merge(
            q, nu, q.assigned_ids(), cluster, cache)
        assert partner is not None
        # pure-merge result must leave the graph acyclic after execution
        assert len(q) == 5  # untouched

    def test_picks_makespan_minimizing_partner(self):
        # diamond: s -> {x, y} -> t ; x on slow proc, y on fast proc
        wf = Workflow()
        wf.add_task("s", work=1, memory=1)
        wf.add_task("x", work=10, memory=1)
        wf.add_task("y", work=10, memory=1)
        wf.add_task("t", work=1, memory=1)
        wf.add_edge("s", "x", 1)
        wf.add_edge("s", "y", 1)
        wf.add_edge("x", "t", 1)
        wf.add_edge("y", "t", 1)
        slow = Processor("slow", 1.0, 1e9)
        fast = Processor("fast", 10.0, 1e9)
        other = Processor("o", 5.0, 1e9)
        cluster = Cluster([slow, fast, other])
        q = QuotientGraph.from_partition(
            wf, [{"s"}, {"x"}, {"y"}, {"t"}], [None, slow, fast, other])
        cache = RequirementCache(wf)
        nu = q.block_of("s")
        _, partner, _ = find_ms_opt_merge(q, nu, q.assigned_ids(), cluster, cache)
        # merging s into the fast block is better than the slow one
        assert partner == q.block_of("y")


class TestMergeUnassignedToAssigned:
    def test_no_unassigned_is_trivial_success(self):
        wf, cluster, q = _chain_quotient(3)
        cache = RequirementCache(wf)
        assert merge_unassigned_to_assigned(q, cluster, cache)

    def test_all_become_assigned(self):
        wf, cluster, q = _chain_quotient(5, [True, False, False, True, False])
        cache = RequirementCache(wf)
        assert merge_unassigned_to_assigned(q, cluster, cache)
        assert not q.unassigned_ids()
        assert q.is_acyclic()

    def test_deep_unassigned_cluster_is_absorbed(self):
        """A frontier must propagate through many unassigned fragments."""
        wf, cluster, q = _chain_quotient(8, [True] + [False] * 7)
        cache = RequirementCache(wf)
        assert merge_unassigned_to_assigned(q, cluster, cache)
        assert not q.unassigned_ids()

    @staticmethod
    def _fan_instance(extra_procs=()):
        """a (r=10) fans to s1, s2 on 7-memory processors; a is unassigned.

        Merging a anywhere peaks at 10 > 7, so only a free processor of
        at least 10 memory can save the mapping.
        """
        wf = Workflow()
        wf.add_task("a", work=1.0, memory=2.0)
        wf.add_task("s1", work=1.0, memory=2.0)
        wf.add_task("s2", work=1.0, memory=2.0)
        wf.add_edge("a", "s1", 4.0)
        wf.add_edge("a", "s2", 4.0)
        p0, p1 = Processor("p0", 1.0, 7.0), Processor("p1", 1.0, 7.0)
        procs = [p0, p1, *extra_procs]
        cluster = Cluster(procs)
        q = QuotientGraph.from_partition(
            wf, [{"a"}, {"s1"}, {"s2"}], [None, p0, p1])
        return wf, cluster, q

    def test_memory_infeasible_returns_false(self):
        wf, cluster, q = self._fan_instance()
        cache = RequirementCache(wf)
        assert not merge_unassigned_to_assigned(q, cluster, cache)

    def test_free_processor_fallback(self):
        """A fragment with no feasible merge gets its own free processor."""
        wf, cluster, q = self._fan_instance(
            extra_procs=[Processor("spare", 1.0, 12.0)])
        cache = RequirementCache(wf)
        assert merge_unassigned_to_assigned(q, cluster, cache)
        assert q.blocks[q.block_of("a")].proc.name == "spare"

    def test_result_respects_memory_everywhere(self):
        from repro.core.assignment import biggest_assign
        from repro.experiments.instances import scaled_cluster_for
        from repro.generators.families import generate_workflow
        from repro.partition.api import acyclic_partition
        from repro.platform.presets import default_cluster
        wf = generate_workflow("genome", 120, seed=9)
        cluster = scaled_cluster_for(wf, default_cluster())
        cache = RequirementCache(wf)
        partition = acyclic_partition(wf, 16)
        state = biggest_assign(wf, cluster, partition, cache=cache)
        q = QuotientGraph.from_partition(
            wf, [state.blocks[b] for b in state.blocks],
            [state.assigned.get(b) for b in state.blocks])
        if merge_unassigned_to_assigned(q, cluster, cache):
            for blk in q.blocks.values():
                assert blk.proc is not None
                assert cache.peak(blk.tasks) <= blk.proc.memory + 1e-9
            assert q.is_acyclic()
