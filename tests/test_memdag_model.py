"""Tests of the traversal memory semantics (DESIGN.md Section 6)."""

import pytest

from repro.memdag.model import (
    BlockPackingState,
    TraversalState,
    evaluate_traversal,
    peak_of_traversal,
)
from repro.workflow.graph import Workflow


class TestSingletonReducesToTaskRequirement:
    def test_singleton_block(self, diamond_workflow):
        for u in diamond_workflow.tasks():
            peak = peak_of_traversal(diamond_workflow, [u], {u})
            assert peak == pytest.approx(diamond_workflow.task_requirement(u))


class TestChainSemantics:
    def test_two_task_chain(self):
        wf = Workflow()
        wf.add_task("a", memory=5.0)
        wf.add_task("b", memory=3.0)
        wf.add_edge("a", "b", 10.0)
        usages = evaluate_traversal(wf, ["a", "b"])
        # during a: m_a + out(a) = 15 ; during b: live(10) + m_b = 13
        assert usages == [pytest.approx(15.0), pytest.approx(13.0)]

    def test_edge_freed_after_consumer(self):
        wf = Workflow()
        for name, m in [("a", 1.0), ("b", 1.0), ("c", 100.0)]:
            wf.add_task(name, memory=m)
        wf.add_edge("a", "b", 50.0)
        wf.add_edge("b", "c", 1.0)
        usages = evaluate_traversal(wf, ["a", "b", "c"])
        # c runs after the (a,b) file has been freed
        assert usages[2] == pytest.approx(1.0 + 100.0)


class TestExternalEdges:
    def test_external_input_streams_in(self, diamond_workflow):
        # block {x}: input from s is external
        peak = peak_of_traversal(diamond_workflow, ["x"], {"x"})
        assert peak == pytest.approx(2.0 + 4.0 + 3.0)  # c(s,x) + m_x + c(x,t)

    def test_external_output_retained_until_block_end(self):
        wf = Workflow()
        wf.add_task("a", memory=1.0)
        wf.add_task("b", memory=1.0)
        wf.add_task("ext", memory=0.0)
        wf.add_edge("a", "ext", 40.0)  # external output
        wf.add_edge("a", "b", 1.0)
        usages = evaluate_traversal(wf, ["a", "b"], {"a", "b"})
        # while b runs, a's external output (40) is still resident
        assert usages[1] == pytest.approx(40.0 + 1.0 + 1.0)


class TestTraversalState:
    def test_order_violation_raises(self, chain_workflow):
        state = TraversalState(chain_workflow)
        with pytest.raises(ValueError):
            state.execute("b")

    def test_non_member_raises(self, chain_workflow):
        state = TraversalState(chain_workflow, {"a", "b"})
        with pytest.raises(KeyError):
            state.execute("c")

    def test_ready_tasks_tracking(self, diamond_workflow):
        state = TraversalState(diamond_workflow)
        assert state.ready_tasks() == ["s"]
        state.execute("s")
        assert set(state.ready_tasks()) == {"x", "y"}
        state.execute("x")
        state.execute("y")
        assert state.ready_tasks() == ["t"]
        state.execute("t")
        assert state.complete()

    def test_peak_tracks_max(self, diamond_workflow):
        state = TraversalState(diamond_workflow)
        usages = [state.execute(u) for u in ["s", "x", "y", "t"]]
        assert state.peak == pytest.approx(max(usages))


class TestEvaluateTraversal:
    def test_rejects_wrong_cover(self, chain_workflow):
        with pytest.raises(ValueError):
            evaluate_traversal(chain_workflow, ["a", "b"])  # missing c, d

    def test_empty_block(self, chain_workflow):
        assert peak_of_traversal(chain_workflow, [], set()) == 0.0


class TestBlockPackingState:
    def test_matches_traversal_state_without_closed_blocks(self, diamond_workflow):
        packer = BlockPackingState(diamond_workflow, capacity=1e9)
        order = ["s", "x", "y", "t"]
        packed = [packer.add(u) for u in order]
        direct = evaluate_traversal(diamond_workflow, order)
        assert packed == pytest.approx(direct)

    def test_closed_block_edges_become_external_inputs(self, chain_workflow):
        packer = BlockPackingState(chain_workflow, capacity=1e9)
        packer.add("a")
        packer.close_block(1e9)
        usage_b = packer.add("b")
        # c(a,b)=3 streams in while b executes: 3 + m_b(4) + out(1)
        assert usage_b == pytest.approx(3.0 + 4.0 + 1.0)

    def test_fits_respects_capacity(self, chain_workflow):
        packer = BlockPackingState(chain_workflow, capacity=5.0)
        # a needs m_a(2) + out(3) = 5
        assert packer.fits("a")
        packer.add("a")
        # b needs live(3) + m_b(4) + out(1) = 8 > 5
        assert not packer.fits("b")

    def test_close_block_returns_tasks_and_resets(self, chain_workflow):
        packer = BlockPackingState(chain_workflow, capacity=1e9)
        packer.add("a")
        packer.add("b")
        tasks = packer.close_block(50.0)
        assert tasks == {"a", "b"}
        assert packer.live == 0.0
        assert packer.peak == 0.0
        assert packer.capacity == 50.0
