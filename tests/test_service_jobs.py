"""Job envelopes: validation, payload rehydration, JSON round trips.

The property classes sweep randomized envelopes through
``to_json``/``from_json`` under the same contract as the API envelopes:
bit-for-bit round trip or explicit rejection, never silent mutation.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScheduleRequest
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster
from repro.service import JobResult, JobSpec, JobStatus
from repro.service.jobs import JOB_KINDS, JOB_STATES, TERMINAL_STATES

# JSON-representable text: any codepoint except lone surrogates
_text = st.text(alphabet=st.characters(exclude_categories=("Cs",)))
_ids = _text.filter(bool)
_scalars = (st.none() | st.booleans() | st.integers(-2**53, 2**53)
            | st.floats(allow_nan=False, allow_infinity=False) | _text)
_payloads = st.dictionaries(_text, _scalars, max_size=5)
_counts = st.integers(0, 10**6)
_times = st.floats(min_value=0, max_value=4e9, allow_nan=False)


def _schedule_payload(n=24, algorithm="daghetpart"):
    wf = generate_workflow("blast", n, seed=3)
    return ScheduleRequest(workflow=wf, cluster=default_cluster(),
                           algorithm=algorithm, scale_memory=True).to_dict()


class TestJobSpec:
    def test_rejects_empty_id_and_unknown_kind(self):
        with pytest.raises(ValueError):
            JobSpec(id="", kind="schedule", payload={})
        with pytest.raises(ValueError):
            JobSpec(id="a", kind="interpretive-dance", payload={})
        with pytest.raises(ValueError):
            JobSpec(id="a", kind="schedule", payload="not-a-mapping")

    def test_schedule_payload_builds_one_request(self):
        spec = JobSpec(id="j1", kind="schedule",
                       payload=_schedule_payload())
        assert spec.total_requests() == 1
        (request,) = spec.build_requests()
        assert request.algorithm == "daghetpart"
        # the service variant is the cacheable one
        assert request.want_mapping is False

    def test_schedule_payload_strips_want_mapping(self):
        payload = _schedule_payload()
        payload["want_mapping"] = True
        (request,) = JobSpec(id="j", kind="schedule",
                             payload=payload).build_requests()
        assert request.want_mapping is False

    @settings(max_examples=50, deadline=None)
    @given(id=_ids, kind=st.sampled_from(JOB_KINDS), payload=_payloads,
           submitted_at=_times, tags=_payloads)
    def test_json_round_trip(self, id, kind, payload, submitted_at, tags):
        spec = JobSpec(id=id, kind=kind, payload=payload,
                       submitted_at=submitted_at, tags=tags)
        back = JobSpec.from_json(spec.to_json())
        assert back == spec
        assert back.to_json() == spec.to_json()

    def test_json_is_strict(self):
        spec = JobSpec(id="j", kind="schedule", payload={"b": 1, "a": 2})
        text = spec.to_json()
        assert json.loads(text) == spec.to_dict()
        assert text.index('"a"') < text.index('"b"')  # sorted keys


class TestJobStatus:
    def test_rejects_bad_states_and_counts(self):
        with pytest.raises(ValueError):
            JobStatus(id="j", state="meditating")
        with pytest.raises(ValueError):
            JobStatus(id="j", completed=-1)
        with pytest.raises(ValueError):
            JobStatus(id="")

    def test_terminal_property_matches_the_constant(self):
        for state in JOB_STATES:
            assert JobStatus(id="j", state=state).terminal \
                == (state in TERMINAL_STATES)

    @settings(max_examples=50, deadline=None)
    @given(id=_ids, state=st.sampled_from(JOB_STATES), total=_counts,
           completed=_counts, ok=_counts, failed=_counts, timeouts=_counts,
           submitted_at=_times,
           started_at=st.none() | _times, finished_at=st.none() | _times,
           error=st.none() | _text)
    def test_json_round_trip(self, **fields):
        status = JobStatus(**fields)
        back = JobStatus.from_json(status.to_json())
        assert back == status
        assert back.to_json() == status.to_json()


class TestJobResult:
    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            JobResult(id="j", n_ok=-1)

    @settings(max_examples=50, deadline=None)
    @given(id=_ids,
           results=st.lists(_payloads, max_size=4),
           n_ok=_counts, n_failed=_counts, n_timeout=_counts,
           cache_hits=_counts, cache_misses=_counts, elapsed_s=_times)
    def test_json_round_trip(self, **fields):
        result = JobResult(**fields)
        back = JobResult.from_json(result.to_json())
        assert back == result
        assert back.to_json() == result.to_json()

    def test_schedule_results_rehydrate_offline_envelopes(self):
        from repro.api import ScheduleResult, solve

        wf = generate_workflow("blast", 24, seed=3)
        offline = solve(ScheduleRequest(
            workflow=wf, cluster=default_cluster(),
            algorithm="daghetpart", scale_memory=True))
        stored = JobResult(id="j", results=(offline.to_dict(),), n_ok=1)
        (back,) = stored.schedule_results()
        assert isinstance(back, ScheduleResult)
        assert back.makespan == offline.makespan
        assert back.algorithm == offline.algorithm
