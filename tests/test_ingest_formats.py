"""Per-format importer tests: golden samples, sniffing, hard errors."""

from pathlib import Path

import pytest

from repro.ingest import (
    available_formats,
    detect_format,
    get_format,
    ingest_path,
    ingest_text,
    register_format,
    unregister_format,
    workflow_fingerprint,
)
from repro.utils.errors import IngestError
from repro.workflow.io import workflow_to_dict

TRACES = Path(__file__).resolve().parent.parent / "examples" / "traces"

#: every bundled sample with its expected format (template data rides along)
SAMPLES = {
    "epigenomics.wfformat.json": "wfcommons",
    "montage.dax": "dax",
    "rnaseq.dot": "dot",
    "cyclesweep.csv": "edgelist",
    "variant_calling.tpl": "template",
    "broken_duplicate.json": "json",
}


class TestRegistry:
    def test_shipped_formats_registered(self):
        assert set(available_formats()) >= {
            "wfcommons", "dax", "dot", "edgelist", "template", "json"}

    def test_get_format_unknown_lists_valid(self):
        with pytest.raises(ValueError, match="wfcommons"):
            get_format("nope")

    def test_canonical_name_lookup(self):
        assert get_format("WfCommons").name == "wfcommons"
        assert get_format("wf_commons").name == "wfcommons"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_format("dax", extensions=(".x",))
            def importer(text, *, name=None, path=None, data=None):
                raise AssertionError

    def test_register_unregister_roundtrip(self):
        @register_format("mini", extensions=(".mini",),
                         sniffer=lambda t: t.startswith("MINI"))
        def import_mini(text, *, name=None, path=None, data=None):
            raise AssertionError
        try:
            assert "mini" in available_formats()
            assert detect_format("MINIFORMAT").name == "mini"
        finally:
            unregister_format("mini")
        assert "mini" not in available_formats()

    def test_detect_never_misroutes_bundled_samples(self):
        for filename, expected in SAMPLES.items():
            text = (TRACES / filename).read_text()
            info = detect_format(text, path=str(TRACES / filename))
            assert info.name == expected, filename

    def test_detect_without_any_signal_is_loud(self):
        with pytest.raises(IngestError, match="cannot detect"):
            detect_format("<html>not a workflow</html>", path="page.xyz")

    def test_extension_fallback_when_nothing_sniffs(self):
        # an unparsable payload defeats every sniffer; the longest
        # registered extension decides (.wfformat.json beats .json)
        info = detect_format("{broken json", path="trace.wfformat.json")
        assert info.name == "wfcommons"


class TestWfCommons:
    def test_golden_epigenomics(self):
        wf = ingest_path(str(TRACES / "epigenomics.wfformat.json"))
        assert wf.name == "epigenomics-chr21"
        assert wf.n_tasks == 9
        assert wf.n_edges == 9
        # execution overlay carries the runtimes/memory
        assert wf.work("map_1") == pytest.approx(210.8)
        assert wf.memory("map_1") == pytest.approx(1073741824)

    def test_flat_layout_with_file_costs(self):
        text = """{"name": "flat", "workflow": {"tasks": [
            {"name": "a", "runtime": 2,
             "files": [{"name": "f", "link": "output", "sizeInBytes": 64}],
             "children": ["b"]},
            {"name": "b", "runtime": 3,
             "files": [{"name": "f", "link": "input", "sizeInBytes": 64}],
             "parents": ["a"]}]}}"""
        wf = ingest_text(text, fmt="wfcommons")
        assert wf.edge_cost("a", "b") == 64.0
        assert wf.name == "flat"

    def test_unknown_parent_is_loud(self):
        text = """{"workflow": {"tasks": [
            {"name": "b", "parents": ["ghost"]}]}}"""
        with pytest.raises(IngestError, match="ghost"):
            ingest_text(text, fmt="wfcommons")

    def test_invalid_json_reports_line(self):
        with pytest.raises(IngestError, match="x.json:2"):
            ingest_text('{"workflow":\n !}', fmt="wfcommons", path="x.json")


class TestDax:
    def test_golden_montage(self):
        wf = ingest_path(str(TRACES / "montage.dax"))
        assert wf.name == "montage"
        assert wf.n_tasks == 10
        assert wf.n_edges == 13
        assert wf.work("mAdd") == pytest.approx(17.5)
        assert wf.memory("mBgModel") == pytest.approx(2048)
        # edge cost = size of the file flowing parent -> child
        assert wf.edge_cost("mProject_1", "mDiff_12") == pytest.approx(4.2e6)

    def test_non_adag_root_rejected(self):
        with pytest.raises(IngestError, match="adag"):
            ingest_text("<workflow></workflow>", fmt="dax")

    def test_invalid_xml_rejected(self):
        with pytest.raises(IngestError, match="invalid XML"):
            ingest_text("<adag><job id='a'></adag>", fmt="dax")

    def test_job_without_id_rejected(self):
        with pytest.raises(IngestError, match="without an id"):
            ingest_text('<adag name="g"><job runtime="1"/></adag>',
                        fmt="dax")


class TestDotHardened:
    def test_golden_rnaseq(self):
        wf = ingest_path(str(TRACES / "rnaseq.dot"))
        assert wf.name == "rnaseq (salmon)"
        assert wf.n_tasks == 8
        assert 'TRIM "galore"' in wf
        assert wf.edge_cost("FASTQC raw", 'TRIM "galore"') == \
            pytest.approx(3.2)

    def test_quoted_ids_with_spaces_and_escapes(self):
        wf = ingest_text(
            'digraph g { "a b" -> "c \\"quoted\\"" [cost=2]; }', fmt="dot")
        assert sorted(wf.tasks()) == ["a b", 'c "quoted"']

    def test_block_comments_inside_statements(self):
        wf = ingest_text(
            'digraph g { a /* mid */ -> b; /* whole\nline */ b -> c; }',
            fmt="dot")
        assert wf.n_edges == 2

    def test_edge_chain_shares_attrs(self):
        wf = ingest_text("digraph g { a -> b -> c [cost=5]; }", fmt="dot")
        assert wf.edge_cost("a", "b") == 5.0
        assert wf.edge_cost("b", "c") == 5.0

    def test_node_only_statement(self):
        wf = ingest_text('digraph g { lonely; a -> b; }', fmt="dot")
        assert "lonely" in wf
        assert wf.in_degree("lonely") == 0

    def test_unparsable_line_is_loud_with_line_number(self):
        text = 'digraph g {\n a -> b;\n ???;\n}'
        with pytest.raises(IngestError, match="(?s)x.dot:3.*unexpected"):
            ingest_text(text, fmt="dot", path="x.dot")

    def test_empty_input_is_loud_not_empty_workflow(self):
        with pytest.raises(IngestError, match="no graph statements"):
            ingest_text("digraph g { }", fmt="dot")

    def test_dangling_arrow_rejected(self):
        with pytest.raises(IngestError, match="dangling"):
            ingest_text("digraph g { a -> ; }", fmt="dot")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(IngestError, match="unterminated quoted"):
            ingest_text('digraph g { "oops -> b; }', fmt="dot")

    def test_unterminated_comment_rejected(self):
        with pytest.raises(IngestError, match="unterminated /"):
            ingest_text("digraph g { a -> b; /* never closed", fmt="dot")

    def test_subgraph_rejected_not_silently_skipped(self):
        with pytest.raises(IngestError, match="subgraph"):
            ingest_text("digraph g { subgraph s { a -> b; } }", fmt="dot")

    def test_last_node_declaration_wins(self):
        wf = ingest_text(
            'digraph g { a [work=1]; a [work=9]; a -> b; }', fmt="dot")
        assert wf.work("a") == 9.0


class TestEdgeList:
    def test_golden_cyclesweep(self):
        wf = ingest_path(str(TRACES / "cyclesweep.csv"))
        assert wf.name == "cyclesweep"
        assert wf.n_tasks == 7
        assert wf.work("sweep_2") == 6.0
        assert wf.memory("collect") == 5.0
        # 'archive' only appears as an edge endpoint: implicit defaults
        assert wf.work("archive") == 1.0

    def test_whitespace_and_semicolon_separators(self):
        wf = ingest_text("a b 2\nb;c;3\n", fmt="edgelist")
        assert wf.edge_cost("a", "b") == 2.0
        assert wf.edge_cost("b", "c") == 3.0

    def test_bad_cost_names_line(self):
        with pytest.raises(IngestError, match="e.csv:2"):
            ingest_text("a,b,1\nb,c,fast\n", fmt="edgelist", path="e.csv")

    def test_empty_input_rejected(self):
        with pytest.raises(IngestError, match="no rows"):
            ingest_text("# nothing here\n", fmt="edgelist")

    def test_too_many_columns_rejected(self):
        with pytest.raises(IngestError, match="columns"):
            ingest_text("a,b,1,2,3\n", fmt="edgelist")


class TestRoundTrips:
    @pytest.mark.parametrize("filename", sorted(
        f for f, fmt in SAMPLES.items()
        if fmt not in ("template", "json")))
    def test_ingest_to_dict_reingest_fixed_point(self, filename):
        wf = ingest_path(str(TRACES / filename))
        serialized = workflow_to_dict(wf)
        back = ingest_text(__import__("json").dumps(serialized), fmt="json")
        assert workflow_to_dict(back) == serialized
        assert workflow_fingerprint(back) == workflow_fingerprint(wf)

    @pytest.mark.parametrize("filename", sorted(
        f for f, fmt in SAMPLES.items() if fmt != "template"
        and f != "broken_duplicate.json"))
    def test_repeated_ingest_bit_identical(self, filename):
        first = ingest_path(str(TRACES / filename))
        second = ingest_path(str(TRACES / filename))
        assert workflow_to_dict(first) == workflow_to_dict(second)

    def test_name_is_path_independent(self, tmp_path):
        src = TRACES / "montage.dax"
        copy = tmp_path / "elsewhere" / "montage.dax"
        copy.parent.mkdir()
        copy.write_text(src.read_text())
        assert workflow_fingerprint(ingest_path(str(src))) == \
            workflow_fingerprint(ingest_path(str(copy)))
