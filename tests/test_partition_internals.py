"""Tests of the partitioner's internal stages: CGraph, coarsening,
initial partitioning, refinement."""

import pytest

from repro.partition.coarsen import CoarseningLevel, coarsen, coarsen_pass, safe_to_contract
from repro.partition.contraction import CGraph
from repro.partition.initial import dfs_topological_order, initial_partition
from repro.partition.refine import edge_cut, refine
from repro.workflow.graph import Workflow


def _cgraph_from_edges(edges, weights=None):
    wf = Workflow()
    nodes = {u for e in edges for u in e}
    for u in nodes:
        wf.add_task(u, work=1.0)
    for u, v in edges:
        wf.add_edge(u, v, 1.0)
    w = weights or {}
    return CGraph.from_workflow(wf, lambda u: w.get(u, 1.0)), wf


class TestCGraph:
    def test_from_workflow(self, fig1_workflow):
        g = CGraph.from_workflow(fig1_workflow, lambda u: 2.0)
        assert len(g) == 9
        assert g.total_weight() == 18.0
        assert g.n_edges() == 13

    def test_from_subset(self, fig1_workflow):
        g = CGraph.from_subset(fig1_workflow, {6, 7, 8}, lambda u: 1.0)
        assert len(g) == 3
        assert g.n_edges() == 3  # (6,7), (6,8), (7,8)

    def test_contract_merges_weights_and_members(self):
        g, _ = _cgraph_from_edges([("a", "b"), ("b", "c")])
        g.contract("a", "b")
        assert len(g) == 2
        assert g.weight["a"] == 2.0
        assert sorted(g.members["a"]) == ["a", "b"]
        assert "c" in g.succ["a"]

    def test_contract_sums_parallel_edges(self):
        # a->b, a->c, b->c : contracting (a,b) makes a double a->c edge
        g, _ = _cgraph_from_edges([("a", "b"), ("a", "c"), ("b", "c")])
        g.contract("a", "b")
        assert g.succ["a"]["c"] == 2.0
        assert g.pred["c"]["a"] == 2.0

    def test_contract_missing_edge_raises(self):
        g, _ = _cgraph_from_edges([("a", "b")])
        with pytest.raises(KeyError):
            g.contract("b", "a")

    def test_topological_order(self):
        g, _ = _cgraph_from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")


class TestSafety:
    def test_unique_parent_is_safe(self):
        g, _ = _cgraph_from_edges([("a", "b"), ("a", "c"), ("c", "d")])
        assert safe_to_contract(g, "a", "b")  # b's only parent is a

    def test_diamond_edge_unsafe_rule(self):
        # contracting (s,t) in a diamond would create a cycle; both local
        # rules reject it: t has 2 parents, s has 2 children
        g, _ = _cgraph_from_edges([("s", "x"), ("s", "y"), ("x", "t"), ("y", "t"),
                                   ("s", "t")])
        assert not safe_to_contract(g, "s", "t")

    def test_contractions_preserve_acyclicity(self):
        from repro.generators.random_dag import random_layered_dag
        for seed in range(6):
            wf = random_layered_dag(60, seed=seed)
            g = CGraph.from_workflow(wf, lambda u: 1.0)
            coarse, _, n = coarsen_pass(g, max_cluster_weight=10.0)
            assert coarse.is_acyclic()
            assert len(coarse) == len(g) - n


class TestCoarsen:
    def test_hierarchy_shrinks(self):
        from repro.generators.families import generate_workflow
        wf = generate_workflow("blast", 200, seed=0)
        g = CGraph.from_workflow(wf, lambda u: 1.0)
        levels = coarsen(g, target_size=32)
        assert levels
        sizes = [len(g)] + [len(lvl.graph) for lvl in levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_assignment_maps_all_fine_nodes(self):
        from repro.generators.random_dag import random_layered_dag
        wf = random_layered_dag(80, seed=1)
        g = CGraph.from_workflow(wf, lambda u: 1.0)
        levels = coarsen(g, target_size=16)
        if levels:
            assert set(levels[0].assignment) == set(g.nodes())
            assert set(levels[0].assignment.values()) == set(levels[0].graph.nodes())

    def test_respects_weight_cap(self):
        g, _ = _cgraph_from_edges([("a", "b"), ("b", "c"), ("c", "d")],
                                  weights={"a": 5, "b": 5, "c": 5, "d": 5})
        coarse, _, n = coarsen_pass(g, max_cluster_weight=7.0)
        assert n == 0  # every contraction would exceed the cap


class TestInitial:
    def test_dfs_order_is_topological(self, fig1_workflow):
        g = CGraph.from_workflow(fig1_workflow, lambda u: 1.0)
        order = dfs_topological_order(g)
        pos = {u: i for i, u in enumerate(order)}
        for u, v, _ in fig1_workflow.edges():
            assert pos[u] < pos[v]

    def test_dfs_keeps_chains_contiguous(self):
        # two independent chains: DFS order must not interleave them
        g, _ = _cgraph_from_edges([("a1", "a2"), ("a2", "a3"),
                                   ("b1", "b2"), ("b2", "b3")])
        order = dfs_topological_order(g)
        a_pos = [order.index(x) for x in ("a1", "a2", "a3")]
        b_pos = [order.index(x) for x in ("b1", "b2", "b3")]
        assert max(a_pos) < min(b_pos) or max(b_pos) < min(a_pos)

    def test_initial_partition_block_count(self):
        g, _ = _cgraph_from_edges([(i, i + 1) for i in range(19)])
        part = initial_partition(g, 4)
        assert set(part.values()) == {0, 1, 2, 3}

    def test_initial_partition_balanced_on_uniform_chain(self):
        g, _ = _cgraph_from_edges([(i, i + 1) for i in range(99)])
        part = initial_partition(g, 4)
        sizes = [sum(1 for b in part.values() if b == i) for i in range(4)]
        assert max(sizes) - min(sizes) <= 2

    def test_indices_follow_topological_order(self):
        g, _ = _cgraph_from_edges([(i, i + 1) for i in range(9)])
        part = initial_partition(g, 3)
        for u in g.succ:
            for v in g.succ[u]:
                assert part[u] <= part[v]

    def test_k_larger_than_n(self):
        g, _ = _cgraph_from_edges([("a", "b")])
        part = initial_partition(g, 10)
        assert len(set(part.values())) == 2


class TestRefine:
    def test_refine_reduces_cut(self):
        # chain of triangles where initial chunking cuts badly
        from repro.generators.random_dag import random_workflow
        improved, worsened = 0, 0
        for seed in range(6):
            wf = random_workflow(60, seed=seed)
            g = CGraph.from_workflow(wf, lambda u: 1.0)
            part = initial_partition(g, 4)
            before = edge_cut(g, part)
            refine(g, part, 4)
            after = edge_cut(g, part)
            assert after <= before + 1e-9
            if after < before:
                improved += 1
        assert improved >= 1  # refinement must actually do something

    def test_refine_preserves_acyclic_index_invariant(self):
        from repro.generators.random_dag import random_workflow
        wf = random_workflow(80, seed=3)
        g = CGraph.from_workflow(wf, lambda u: 1.0)
        part = initial_partition(g, 5)
        refine(g, part, 5)
        for u in g.succ:
            for v in g.succ[u]:
                assert part[u] <= part[v]

    def test_refine_never_empties_blocks(self):
        from repro.generators.random_dag import random_workflow
        wf = random_workflow(40, seed=4)
        g = CGraph.from_workflow(wf, lambda u: 1.0)
        part = initial_partition(g, 4)
        n_before = len(set(part.values()))
        refine(g, part, 4)
        assert len(set(part.values())) == n_before

    def test_trivial_cases(self):
        g, _ = _cgraph_from_edges([("a", "b")])
        part = {"a": 0, "b": 0}
        assert refine(g, part, 1) == part


class TestOrderStrategies:
    def test_bfs_order_is_topological(self, fig1_workflow):
        from repro.partition.initial import bfs_topological_order
        g = CGraph.from_workflow(fig1_workflow, lambda u: 1.0)
        order = bfs_topological_order(g)
        pos = {u: i for i, u in enumerate(order)}
        for u, v, _ in fig1_workflow.edges():
            assert pos[u] < pos[v]

    def test_bfs_groups_levels(self):
        # fan: root then all leaves; BFS keeps leaves adjacent
        g, _ = _cgraph_from_edges([("r", f"l{i}") for i in range(5)])
        from repro.partition.initial import bfs_topological_order
        order = bfs_topological_order(g)
        assert order[0] == "r"
        assert set(order[1:]) == {f"l{i}" for i in range(5)}

    def test_unknown_strategy_rejected(self, fig1_workflow):
        g = CGraph.from_workflow(fig1_workflow, lambda u: 1.0)
        import pytest as _pytest
        with _pytest.raises(ValueError, match="strategy"):
            initial_partition(g, 2, strategy="zigzag")

    def test_best_strategy_never_worse_than_either(self):
        from repro.generators.families import generate_workflow
        from repro.partition.api import acyclic_partition, partition_quality
        wf = generate_workflow("montage", 120, seed=14)
        cuts = {}
        for strat in ("dfs", "bfs", "best"):
            blocks = acyclic_partition(wf, 6, strategy=strat)
            cuts[strat] = partition_quality(wf, blocks)["cut"]
        assert cuts["best"] <= min(cuts["dfs"], cuts["bfs"]) + 1e-9
