"""The kernel seam: selection rules and bit-for-bit interchangeability.

The benchmark-scale version of the equivalence check lives in
``benchmarks/test_core_kernels.py``; here the same contract is held on
small deterministic instances plus the dispatch machinery itself
(``REPRO_KERNEL``, ``set_kernel``/``use_kernel``, the ``auto`` cutoff).
"""

from __future__ import annotations

import pytest

from repro.core.kernels import (
    KERNEL_NAMES,
    get_kernel,
    kernel_name,
    set_kernel,
    use_kernel,
)
from repro.core.kernels.array import ArrayKernel
from repro.core.kernels.reference import ReferenceKernel
from repro.core.quotient import QuotientGraph
from repro.generators.families import generate_workflow
from repro.generators.random_dag import random_workflow
from repro.platform.presets import default_cluster
from repro.utils.errors import CyclicWorkflowError
from repro.workflow.graph import Workflow


@pytest.fixture(autouse=True)
def _restore_selection():
    previous = set_kernel(None)
    yield
    set_kernel(previous)


def _singleton_quotient(wf, cluster=None, assign=True):
    q = QuotientGraph.from_partition(wf, [{u} for u in wf.tasks()])
    if assign and cluster is not None:
        procs = cluster.processors
        for i, bid in enumerate(sorted(q.blocks)):
            q.set_proc(bid, procs[i % len(procs)])
    return q


class TestSelection:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernel_name() == "auto"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        assert kernel_name() == "reference"
        assert isinstance(get_kernel(), ReferenceKernel)
        monkeypatch.setenv("REPRO_KERNEL", "array")
        assert isinstance(get_kernel(), ArrayKernel)

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "gpu")
        with pytest.raises(ValueError):
            kernel_name()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        set_kernel("array")
        assert kernel_name() == "array"
        set_kernel(None)
        assert kernel_name() == "reference"

    def test_set_kernel_invalid_raises(self):
        with pytest.raises(ValueError):
            set_kernel("cuda")

    def test_use_kernel_restores(self):
        before = kernel_name()
        with use_kernel("reference") as k:
            assert isinstance(k, ReferenceKernel)
            assert kernel_name() == "reference"
        assert kernel_name() == before

    def test_names_are_stable(self):
        assert KERNEL_NAMES == ("reference", "array", "auto")

    def test_auto_cutoff_delegates_small_instances(self, monkeypatch):
        """Below the cutoff ``auto`` prices on the reference loops (the
        outputs are identical either way; this pins the economics)."""
        monkeypatch.setenv("REPRO_ARRAY_CUTOFF", "1000000")
        auto = ArrayKernel(forced=False)
        wf = random_workflow(50, seed=0)
        assert wf._compiled is None
        auto.task_requirements(wf)
        assert wf._compiled is None  # never compiled: delegated
        forced = ArrayKernel(forced=True)
        forced.task_requirements(wf)
        assert wf._compiled is not None


class TestEquivalence:
    """ref and array must agree bit for bit — values AND ordering."""

    @pytest.mark.parametrize("family,n", [
        ("blast", 40), ("genome", 60), ("montage", 60), ("bwa", 80),
    ])
    def test_bottom_weights(self, family, n):
        wf = generate_workflow(family, n, seed=1)
        cluster = default_cluster()
        q = _singleton_quotient(wf, cluster)
        ref = ReferenceKernel().bottom_weights(q, cluster, 1.0)
        arr = ArrayKernel(forced=True).bottom_weights(q, cluster, 1.0)
        # key order is not part of this contract (reference fills in
        # reverse topological order, array in block order) — values are
        assert ref == arr
        assert set(ref) == set(arr)

    def test_bottom_weights_unassigned_blocks(self):
        """proc=None blocks fall back to the default speed in both."""
        wf = random_workflow(60, seed=2)
        cluster = default_cluster()
        q = _singleton_quotient(wf, cluster)
        for bid in sorted(q.blocks)[::3]:
            q.set_proc(bid, None)
        ref = ReferenceKernel().bottom_weights(q, cluster, 2.5)
        arr = ArrayKernel(forced=True).bottom_weights(q, cluster, 2.5)
        assert ref == arr

    def test_bottom_weights_empty_and_single(self):
        cluster = default_cluster()
        for wf in (Workflow(),):
            q = _singleton_quotient(wf)
            assert ArrayKernel(forced=True).bottom_weights(q, cluster) == {}
        wf = Workflow()
        wf.add_task("u", 6.0, 1.0)
        q = _singleton_quotient(wf, cluster)
        ref = ReferenceKernel().bottom_weights(q, cluster)
        arr = ArrayKernel(forced=True).bottom_weights(q, cluster)
        assert ref == arr

    def test_bottom_weights_cyclic_raises_in_both(self):
        wf = Workflow()
        wf.add_edge("a", "b", 1.0)
        wf.add_edge("c", "d", 1.0)
        q = QuotientGraph.from_partition(wf, [{"a", "d"}, {"b", "c"}])
        for kernel in (ReferenceKernel(), ArrayKernel(forced=True)):
            with pytest.raises(CyclicWorkflowError):
                kernel.bottom_weights(q, default_cluster())

    def test_feasible_swap_pairs(self):
        wf = random_workflow(40, seed=3)
        cluster = default_cluster()
        q = _singleton_quotient(wf, cluster)
        ids = sorted(q.blocks)
        # memory-tight requirements: only some pairs feasible
        requirement = {bid: 90.0 + (i * 53) % 120
                       for i, bid in enumerate(ids)}
        ref = ReferenceKernel().feasible_swap_pairs(ids, requirement, q.blocks)
        arr = ArrayKernel(forced=True).feasible_swap_pairs(
            ids, requirement, q.blocks)
        assert ref == arr  # exact list equality: same pairs, same order
        assert ref  # non-degenerate instance

    def test_memory_slack_order(self):
        bids = list(range(100, 0, -1))
        slacks = [float((i * 37) % 11 - 5) for i in range(100)]
        for cap in (0, 5, 24, 100, 200):
            ref = ReferenceKernel().memory_slack_order(bids, slacks, cap)
            arr = ArrayKernel(forced=True).memory_slack_order(
                bids, slacks, cap)
            assert ref == arr

    def test_task_requirements(self):
        wf = generate_workflow("soykb", 80, seed=4)
        ref = ReferenceKernel().task_requirements(wf)
        arr = ArrayKernel(forced=True).task_requirements(wf)
        assert ref == arr
        assert list(ref) == list(arr)

    def test_makespan_dispatches_through_seam(self):
        """The public makespan() is identical under either selection."""
        from repro.core.makespan import makespan
        wf = generate_workflow("genome", 60, seed=5)
        cluster = default_cluster()
        q = _singleton_quotient(wf, cluster)
        with use_kernel("reference"):
            mu_ref = makespan(q, cluster)
        with use_kernel("array"):
            mu_arr = makespan(q, cluster)
        assert mu_ref == mu_arr
