"""Tests of the DagHetPart orchestrator (Section 4.2) and the schedule API."""

import pytest

from repro.core.baseline import dag_het_mem
from repro.core.heuristic import (
    DagHetPartConfig,
    _k_prime_candidates,
    dag_het_part,
    schedule,
)
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import WORKFLOW_FAMILIES, generate_workflow
from repro.platform.cluster import Cluster
from repro.platform.presets import default_cluster
from repro.platform.processor import Processor
from repro.utils.errors import NoFeasibleMappingError
from repro.workflow.graph import Workflow


class TestKPrimeCandidates:
    def test_all_strategy(self):
        cfg = DagHetPartConfig(k_prime_strategy="all")
        assert _k_prime_candidates(5, cfg) == [1, 2, 3, 4, 5]

    def test_doubling_strategy(self):
        cfg = DagHetPartConfig(k_prime_strategy="doubling")
        assert _k_prime_candidates(36, cfg) == [1, 2, 4, 8, 16, 32, 36]

    def test_doubling_includes_k_once(self):
        cfg = DagHetPartConfig(k_prime_strategy="doubling")
        assert _k_prime_candidates(4, cfg) == [1, 2, 4]

    def test_auto_switches_on_size(self):
        auto = DagHetPartConfig(k_prime_strategy="auto")
        assert _k_prime_candidates(8, auto) == list(range(1, 9))
        assert len(_k_prime_candidates(36, auto)) < 36

    def test_explicit_values_clamped(self):
        cfg = DagHetPartConfig(k_prime_values=(2, 4, 99))
        assert _k_prime_candidates(8, cfg) == [2, 4]

    def test_invalid_values(self):
        cfg = DagHetPartConfig(k_prime_values=(99,))
        with pytest.raises(ValueError):
            _k_prime_candidates(8, cfg)

    def test_unknown_strategy(self):
        cfg = DagHetPartConfig(k_prime_strategy="mystery")
        with pytest.raises(ValueError):
            _k_prime_candidates(8, cfg)

    @pytest.mark.parametrize("strategy", ["all", "doubling", "auto"])
    def test_k_equals_one(self, strategy):
        cfg = DagHetPartConfig(k_prime_strategy=strategy)
        assert _k_prime_candidates(1, cfg) == [1]

    def test_explicit_values_partially_out_of_range(self):
        # below 1 and above k are dropped; survivors are sorted, deduped
        cfg = DagHetPartConfig(k_prime_values=(0, -3, 5, 5, 3, 12, 99))
        assert _k_prime_candidates(8, cfg) == [3, 5]

    def test_explicit_values_override_strategy(self):
        cfg = DagHetPartConfig(k_prime_strategy="all", k_prime_values=(7,))
        assert _k_prime_candidates(8, cfg) == [7]

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 36, 60, 64])
    def test_doubling_always_ends_exactly_at_k(self, k):
        cfg = DagHetPartConfig(k_prime_strategy="doubling")
        values = _k_prime_candidates(k, cfg)
        assert values[0] == 1
        assert values[-1] == k
        assert values == sorted(set(values))  # strictly increasing, no dupes
        # every element but the last is a power of two below k
        for v in values[:-1]:
            assert v < k and (v & (v - 1)) == 0


class TestEndToEnd:
    @pytest.mark.parametrize("family", WORKFLOW_FAMILIES)
    def test_valid_mapping_per_family(self, family):
        wf = generate_workflow(family, 60, seed=1)
        cluster = scaled_cluster_for(wf, default_cluster())
        mapping = dag_het_part(wf, cluster,
                               DagHetPartConfig(k_prime_strategy="doubling"))
        mapping.validate()
        assert mapping.algorithm == "DagHetPart"

    def test_beats_or_matches_baseline_usually(self):
        """Aggregate improvement is the paper's headline claim."""
        import math
        ratios = []
        for family in ("blast", "bwa", "seismology", "genome", "soykb"):
            wf = generate_workflow(family, 120, seed=5)
            cluster = scaled_cluster_for(wf, default_cluster())
            base = dag_het_mem(wf, cluster)
            part = dag_het_part(wf, cluster,
                                DagHetPartConfig(k_prime_strategy="doubling"))
            ratios.append(part.makespan() / base.makespan())
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        assert geomean < 0.8  # must clearly exploit heterogeneity

    def test_single_processor_cluster(self):
        wf = generate_workflow("blast", 30, seed=0)
        proc = Processor("only", 4.0, 1e9)
        mapping = dag_het_part(wf, Cluster([proc]))
        mapping.validate()
        assert mapping.n_blocks == 1
        assert mapping.makespan() == pytest.approx(wf.total_work() / 4.0)

    def test_empty_workflow(self, unit_cluster):
        mapping = dag_het_part(Workflow("empty"), unit_cluster)
        assert mapping.n_blocks == 0

    def test_infeasible_platform_raises(self):
        wf = Workflow()
        wf.add_task("huge", work=1.0, memory=1000.0)
        cluster = Cluster([Processor("small", 1.0, 10.0)])
        with pytest.raises(NoFeasibleMappingError):
            dag_het_part(wf, cluster)

    def test_deterministic(self):
        wf = generate_workflow("bwa", 50, seed=3)
        cluster = scaled_cluster_for(wf, default_cluster())
        cfg = DagHetPartConfig(k_prime_strategy="doubling")
        m1 = dag_het_part(wf, cluster, cfg)
        m2 = dag_het_part(wf, cluster, cfg)
        assert m1.makespan() == pytest.approx(m2.makespan())

    def test_ablation_toggles_run(self):
        wf = generate_workflow("genome", 60, seed=2)
        cluster = scaled_cluster_for(wf, default_cluster())
        base_cfg = DagHetPartConfig(k_prime_strategy="doubling")
        no_step4 = DagHetPartConfig(k_prime_strategy="doubling",
                                    enable_swaps=False, enable_idle_moves=False)
        full = dag_het_part(wf, cluster, base_cfg)
        reduced = dag_het_part(wf, cluster, no_step4)
        full.validate()
        reduced.validate()
        # Step 4 never hurts: the full pipeline is at least as good
        assert full.makespan() <= reduced.makespan() + 1e-9


class TestScheduleApi:
    def test_schedule_daghetpart(self):
        wf = generate_workflow("blast", 40, seed=1)
        cluster = scaled_cluster_for(wf, default_cluster())
        m = schedule(wf, cluster, "daghetpart",
                     config=DagHetPartConfig(k_prime_strategy="doubling"))
        assert m.algorithm == "DagHetPart"

    def test_schedule_daghetmem_aliases(self):
        wf = generate_workflow("blast", 40, seed=1)
        cluster = scaled_cluster_for(wf, default_cluster())
        for name in ("daghetmem", "DagHetMem", "dag-het-mem", "dag_het_mem"):
            m = schedule(wf, cluster, name)
            assert m.algorithm == "DagHetMem"

    def test_unknown_algorithm(self, unit_cluster):
        wf = generate_workflow("blast", 10, seed=0)
        with pytest.raises(ValueError, match="unknown algorithm"):
            schedule(wf, unit_cluster, "hexagonal")


class TestSweepOutcome:
    def test_sweep_reports_winning_k_prime(self):
        from repro.core.heuristic import dag_het_part_sweep
        wf = generate_workflow("blast", 40, seed=1)
        cluster = scaled_cluster_for(wf, default_cluster())
        config = DagHetPartConfig(k_prime_values=(1, 4, 12))
        outcome = dag_het_part_sweep(wf, cluster, config=config)
        assert outcome.k_prime in (1, 4, 12)
        assert [p.k_prime for p in outcome.sweep] == [1, 4, 12]
        # the winner realizes the best "ok" makespan of the trace
        ok = {p.k_prime: p.makespan for p in outcome.sweep if p.status == "ok"}
        assert outcome.k_prime in ok
        assert ok[outcome.k_prime] == min(ok.values())

    def test_sweep_matches_plain_dag_het_part(self):
        wf = generate_workflow("bwa", 30, seed=2)
        cluster = scaled_cluster_for(wf, default_cluster())
        from repro.core.heuristic import dag_het_part_sweep
        config = DagHetPartConfig(k_prime_strategy="doubling")
        outcome = dag_het_part_sweep(wf, cluster, config=config)
        mapping = dag_het_part(wf, cluster, config=config)
        assert outcome.mapping.makespan() == pytest.approx(mapping.makespan())

    def test_empty_workflow_has_no_sweep(self):
        from repro.core.heuristic import dag_het_part_sweep
        outcome = dag_het_part_sweep(Workflow("empty"), default_cluster())
        assert outcome.k_prime is None and outcome.sweep == ()
        assert outcome.mapping.n_blocks == 0

    def test_failure_carries_sweep_trace(self):
        from repro.core.heuristic import dag_het_part_sweep
        wf = generate_workflow("blast", 24, seed=0)
        tiny = Cluster([Processor("p", 1.0, 0.001)])
        with pytest.raises(NoFeasibleMappingError) as exc:
            dag_het_part_sweep(wf, tiny)
        assert len(exc.value.sweep) >= 1
        assert all(p.status in ("infeasible", "error")
                   for p in exc.value.sweep)
