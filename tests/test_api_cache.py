"""Tests of the on-disk result cache and the request fingerprint."""

import dataclasses
import json

from repro.api import (
    ResultCache,
    ScheduleRequest,
    ScheduleResult,
    request_fingerprint,
    solve,
)
from repro.core.heuristic import DagHetPartConfig
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster, small_cluster

CONFIG = DagHetPartConfig(k_prime_values=(1, 4))


def _request(**overrides) -> ScheduleRequest:
    base = dict(workflow=generate_workflow("blast", 24, seed=1),
                cluster=default_cluster(), algorithm="daghetpart",
                config=CONFIG, scale_memory=True, want_mapping=False)
    base.update(overrides)
    return ScheduleRequest(**base)


class TestFingerprint:
    def test_stable_across_identical_requests(self):
        assert request_fingerprint(_request()) == request_fingerprint(_request())

    def test_tags_and_want_mapping_do_not_matter(self):
        a = _request(tags={"instance": "x"}, want_mapping=False)
        b = _request(tags={"other": 1}, want_mapping=True)
        assert request_fingerprint(a) == request_fingerprint(b)

    def test_algorithm_name_canonicalized(self):
        assert request_fingerprint(_request(algorithm="DagHetPart")) == \
            request_fingerprint(_request(algorithm="dag-het-part"))

    def test_sensitive_to_workflow_cluster_config_and_knobs(self):
        base = request_fingerprint(_request())
        others = [
            _request(workflow=generate_workflow("blast", 24, seed=2)),
            _request(cluster=small_cluster()),
            _request(cluster=default_cluster(bandwidth=2.0)),
            _request(algorithm="daghetmem", config=None),
            _request(config=DagHetPartConfig(k_prime_values=(1, 8))),
            _request(scale_memory=False),
        ]
        fingerprints = {request_fingerprint(r) for r in others}
        assert base not in fingerprints
        assert len(fingerprints) == len(others)  # all pairwise distinct


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        request = _request()
        result = solve(request)
        with ResultCache(str(tmp_path / "c")) as cache:
            fp = cache.fingerprint(request)
            assert cache.get(fp) is None
            cache.put(fp, result)
            got = cache.get(fp, request)
        assert got == result  # mapping excluded from frozen-dataclass eq
        assert got.makespan == result.makespan
        assert got.runtime == result.runtime  # cached runtime preserved

    def test_hit_takes_tags_from_incoming_request(self, tmp_path):
        request = _request(tags={"instance": "a"})
        result = solve(request)
        with ResultCache(str(tmp_path / "c")) as cache:
            fp = cache.fingerprint(request)
            cache.put(fp, result)
            relabelled = _request(tags={"instance": "b", "extra": 1})
            got = cache.get(cache.fingerprint(relabelled), relabelled)
        assert got.tags == {"instance": "b", "extra": 1}

    def test_survives_reopen(self, tmp_path):
        request = _request()
        result = solve(request)
        path = str(tmp_path / "c")
        with ResultCache(path) as cache:
            cache.put(cache.fingerprint(request), result)
        reopened = ResultCache(path)
        assert len(reopened) == 1
        assert reopened.get(reopened.fingerprint(request), request) == result

    def test_truncated_final_line_is_skipped(self, tmp_path):
        """A crash mid-write leaves a partial line; the prefix stays usable."""
        request = _request()
        result = solve(request)
        path = str(tmp_path / "c")
        with ResultCache(path) as cache:
            cache.put(cache.fingerprint(request), result)
        with open(cache.path, "a") as fh:
            fh.write('{"fp": "deadbeef", "result": {"algo')  # torn write
        reopened = ResultCache(path)
        assert len(reopened) == 1
        assert reopened.get(reopened.fingerprint(request), request) == result
        # and the cache still accepts new entries afterwards
        other = _request(scale_memory=False)
        reopened.put(reopened.fingerprint(other), solve(other))
        assert len(ResultCache(path)) == 2

    def test_duplicate_put_not_rewritten(self, tmp_path):
        request = _request()
        result = solve(request)
        with ResultCache(str(tmp_path / "c")) as cache:
            fp = cache.fingerprint(request)
            cache.put(fp, result)
            cache.put(fp, dataclasses.replace(result, runtime=99.0))
        lines = [l for l in open(cache.path) if l.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["result"]["runtime"] != 99.0

    def test_stats(self, tmp_path):
        request = _request()
        with ResultCache(str(tmp_path / "c")) as cache:
            fp = cache.fingerprint(request)
            cache.get(fp)
            cache.put(fp, solve(request))
            cache.get(fp)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
