"""Tests of the on-disk result cache and the request fingerprint."""

import dataclasses
import json

import pytest

from repro.api import (
    ResultCache,
    ScheduleRequest,
    ScheduleResult,
    request_fingerprint,
    solve,
)
from repro.core.heuristic import DagHetPartConfig
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster, small_cluster

CONFIG = DagHetPartConfig(k_prime_values=(1, 4))


def _request(**overrides) -> ScheduleRequest:
    base = dict(workflow=generate_workflow("blast", 24, seed=1),
                cluster=default_cluster(), algorithm="daghetpart",
                config=CONFIG, scale_memory=True, want_mapping=False)
    base.update(overrides)
    return ScheduleRequest(**base)


class TestFingerprint:
    def test_stable_across_identical_requests(self):
        assert request_fingerprint(_request()) == request_fingerprint(_request())

    def test_tags_and_want_mapping_do_not_matter(self):
        a = _request(tags={"instance": "x"}, want_mapping=False)
        b = _request(tags={"other": 1}, want_mapping=True)
        assert request_fingerprint(a) == request_fingerprint(b)

    def test_algorithm_name_canonicalized(self):
        assert request_fingerprint(_request(algorithm="DagHetPart")) == \
            request_fingerprint(_request(algorithm="dag-het-part"))

    def test_sensitive_to_workflow_cluster_config_and_knobs(self):
        base = request_fingerprint(_request())
        others = [
            _request(workflow=generate_workflow("blast", 24, seed=2)),
            _request(cluster=small_cluster()),
            _request(cluster=default_cluster(bandwidth=2.0)),
            _request(algorithm="daghetmem", config=None),
            _request(config=DagHetPartConfig(k_prime_values=(1, 8))),
            _request(scale_memory=False),
        ]
        fingerprints = {request_fingerprint(r) for r in others}
        assert base not in fingerprints
        assert len(fingerprints) == len(others)  # all pairwise distinct


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        request = _request()
        result = solve(request)
        with ResultCache(str(tmp_path / "c")) as cache:
            fp = cache.fingerprint(request)
            assert cache.get(fp) is None
            cache.put(fp, result)
            got = cache.get(fp, request)
        assert got == result  # mapping excluded from frozen-dataclass eq
        assert got.makespan == result.makespan
        assert got.runtime == result.runtime  # cached runtime preserved

    def test_hit_takes_tags_from_incoming_request(self, tmp_path):
        request = _request(tags={"instance": "a"})
        result = solve(request)
        with ResultCache(str(tmp_path / "c")) as cache:
            fp = cache.fingerprint(request)
            cache.put(fp, result)
            relabelled = _request(tags={"instance": "b", "extra": 1})
            got = cache.get(cache.fingerprint(relabelled), relabelled)
        assert got.tags == {"instance": "b", "extra": 1}

    def test_survives_reopen(self, tmp_path):
        request = _request()
        result = solve(request)
        path = str(tmp_path / "c")
        with ResultCache(path) as cache:
            cache.put(cache.fingerprint(request), result)
        reopened = ResultCache(path)
        assert len(reopened) == 1
        assert reopened.get(reopened.fingerprint(request), request) == result

    def test_truncated_final_line_is_skipped(self, tmp_path):
        """A crash mid-write leaves a partial line; the prefix stays usable."""
        request = _request()
        result = solve(request)
        path = str(tmp_path / "c")
        with ResultCache(path) as cache:
            cache.put(cache.fingerprint(request), result)
        with open(cache.path, "a") as fh:
            fh.write('{"fp": "deadbeef", "result": {"algo')  # torn write
        reopened = ResultCache(path)
        assert len(reopened) == 1
        assert reopened.get(reopened.fingerprint(request), request) == result
        # and the cache still accepts new entries afterwards
        other = _request(scale_memory=False)
        reopened.put(reopened.fingerprint(other), solve(other))
        assert len(ResultCache(path)) == 2

    def test_duplicate_put_not_rewritten(self, tmp_path):
        request = _request()
        result = solve(request)
        with ResultCache(str(tmp_path / "c")) as cache:
            fp = cache.fingerprint(request)
            cache.put(fp, result)
            cache.put(fp, dataclasses.replace(result, runtime=99.0))
        lines = [l for l in open(cache.path) if l.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["result"]["runtime"] != 99.0

    def test_stats(self, tmp_path):
        request = _request()
        with ResultCache(str(tmp_path / "c")) as cache:
            fp = cache.fingerprint(request)
            cache.get(fp)
            cache.put(fp, solve(request))
            cache.get(fp)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}


def _populated_cache(tmp_path, n=3):
    """A closed cache with ``n`` complete entries; returns (path, [(fp, result)])."""
    entries = []
    path = str(tmp_path / "c")
    with ResultCache(path) as cache:
        for seed in range(1, n + 1):
            request = _request(workflow=generate_workflow("blast", 24, seed=seed))
            fp = cache.fingerprint(request)
            cache.put(fp, solve(request))
            entries.append((fp, request))
    return path, entries


class TestMidAppendCrashRecovery:
    """The process dies mid-append: the repaired index must drop exactly
    the torn entry — every byte-complete line before it stays served."""

    @pytest.mark.parametrize("keep", [0.02, 0.25, 0.5, 0.97])
    def test_torn_final_line_drops_only_that_entry(self, tmp_path, keep):
        path, entries = _populated_cache(tmp_path)
        cache_file = ResultCache(path).path
        raw = open(cache_file, "rb").read()
        last_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        last_len = len(raw) - last_start
        # cut the final payload line `keep` of the way in (1 byte .. just
        # short of complete) — every prefix the OS could have flushed
        cut = last_start + max(1, min(last_len - 2, int(last_len * keep)))
        with open(cache_file, "r+b") as fh:
            fh.truncate(cut)

        reopened = ResultCache(path)
        assert len(reopened) == len(entries) - 1
        for fp, request in entries[:-1]:
            assert reopened.get(fp, request) is not None
        torn_fp, torn_request = entries[-1]
        assert torn_fp not in reopened
        assert reopened.get(torn_fp, torn_request) is None

    def test_missing_final_newline_alone_is_not_a_torn_entry(self, tmp_path):
        # dying between write() and the newline flush leaves complete
        # JSON without its terminator — that entry is still recoverable
        path, entries = _populated_cache(tmp_path)
        cache_file = ResultCache(path).path
        size = len(open(cache_file, "rb").read())
        with open(cache_file, "r+b") as fh:
            fh.truncate(size - 1)
        reopened = ResultCache(path)
        assert len(reopened) == len(entries)
        assert reopened.get(*entries[-1]) is not None

    def test_corrupt_middle_line_drops_only_that_entry(self, tmp_path):
        path, entries = _populated_cache(tmp_path)
        cache_file = ResultCache(path).path
        lines = open(cache_file, "rb").read().splitlines(keepends=True)
        assert len(lines) == 3
        # a hole punched mid-file (lost page, partial sector write): the
        # middle line's payload is garbage but its framing survives
        lines[1] = b'{"fp": "deadbeef", "result": {"alg\x00' + b"\n"
        with open(cache_file, "wb") as fh:
            fh.writelines(lines)

        reopened = ResultCache(path)
        assert len(reopened) == 2
        assert entries[0][0] in reopened and entries[2][0] in reopened
        assert entries[1][0] not in reopened

    @pytest.mark.parametrize("keep", [0.3, 0.8])
    def test_next_writer_repairs_the_torn_tail(self, tmp_path, keep):
        path, entries = _populated_cache(tmp_path)
        cache_file = ResultCache(path).path
        raw = open(cache_file, "rb").read()
        last_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        cut = last_start + max(1, int((len(raw) - last_start) * keep))
        with open(cache_file, "r+b") as fh:
            fh.truncate(cut)

        # the torn request is recomputed and re-appended; the fragment is
        # newline-terminated first so the new entry parses on its own line
        torn_fp, torn_request = entries[-1]
        reopened = ResultCache(path)
        assert reopened.get(torn_fp, torn_request) is None
        reopened.put(torn_fp, solve(torn_request))
        reopened.close()

        final = ResultCache(path)
        assert len(final) == len(entries)
        for fp, request in entries:
            assert final.get(fp, request) is not None
        # every line except the repaired fragment is valid JSON
        bad = [l for l in open(final.path, "rb").read().splitlines()
               if l and not _parses(l)]
        assert len(bad) == 1  # exactly the terminated torn fragment


def _parses(line: bytes) -> bool:
    try:
        json.loads(line.decode("utf-8"))
        return True
    except (ValueError, UnicodeDecodeError):
        return False


# ----------------------------------------------------------------------
# The CacheBackend interface: both storage backends, one behaviour suite
# ----------------------------------------------------------------------
@pytest.fixture(params=["jsonl", "sqlite"])
def make_cache(request, tmp_path):
    """Factory opening the same on-disk cache again and again."""
    from repro.api import open_cache
    kind = request.param
    uri = (f"sqlite://{tmp_path}/cache.db" if kind == "sqlite"
           else str(tmp_path / "cache-dir"))
    return lambda: open_cache(uri)


class TestCacheBackendContract:
    """The suite every backend must pass (retag, dedupe, reopen, stats)."""

    def test_put_get_roundtrip_and_retagging(self, make_cache):
        request = _request(tags={"instance": "a"})
        result = solve(request)
        with make_cache() as cache:
            fp = cache.fingerprint(request)
            assert cache.get(fp) is None
            cache.put(fp, result)
            relabelled = _request(tags={"instance": "b", "extra": 1})
            got = cache.get(cache.fingerprint(relabelled), relabelled)
        assert got.tags == {"instance": "b", "extra": 1}
        assert got.makespan == result.makespan
        assert got.runtime == result.runtime

    def test_survives_reopen(self, make_cache):
        request = _request()
        result = solve(request)
        with make_cache() as cache:
            cache.put(cache.fingerprint(request), result)
        with make_cache() as reopened:
            assert len(reopened) == 1
            assert reopened.get(reopened.fingerprint(request), request) == result

    def test_reopen_without_close_is_crash_safe(self, make_cache):
        """Every completed put is durable even when close() never ran —
        the sqlite analogue of the JSONL torn-tail recovery."""
        request = _request()
        other = _request(scale_memory=False)
        cache = make_cache()
        cache.put(cache.fingerprint(request), solve(request))
        cache.put(cache.fingerprint(other), solve(other))
        # no close(): simulates the process dying between puts
        with make_cache() as reopened:
            assert len(reopened) == 2
            assert reopened.get(reopened.fingerprint(request), request) \
                is not None
        cache.close()

    def test_duplicate_put_ignored(self, make_cache):
        request = _request()
        result = solve(request)
        with make_cache() as cache:
            fp = cache.fingerprint(request)
            cache.put(fp, result)
            cache.put(fp, dataclasses.replace(result, runtime=99.0))
            assert len(cache) == 1
            assert cache.get(fp).runtime != 99.0

    def test_stats_and_contains(self, make_cache):
        request = _request()
        with make_cache() as cache:
            fp = cache.fingerprint(request)
            cache.get(fp)
            cache.put(fp, solve(request))
            cache.get(fp)
            assert fp in cache
            assert "0" * 64 not in cache
            assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_served_through_iter_solve_batch(self, make_cache):
        from repro.api import iter_solve_batch
        requests = [_request(), _request(scale_memory=False)]
        with make_cache() as cache:
            first = list(iter_solve_batch(requests, cache=cache))
        with make_cache() as cache:
            second = list(iter_solve_batch(requests, cache=cache))
            assert cache.stats()["hits"] == 2
        assert [r.to_dict() for r in first] == [r.to_dict() for r in second]


class TestOpenCacheUri:
    def test_plain_directory_is_jsonl(self, tmp_path):
        from repro.api import open_cache
        with open_cache(str(tmp_path / "d")) as cache:
            assert isinstance(cache, ResultCache)

    def test_jsonl_scheme(self, tmp_path):
        from repro.api import open_cache
        with open_cache(f"jsonl://{tmp_path}/d") as cache:
            assert isinstance(cache, ResultCache)
            assert cache.directory == f"{tmp_path}/d"

    def test_sqlite_scheme_absolute(self, tmp_path):
        # sqlite:// + /abs/path — i.e. sqlite:///abs/path, three slashes
        from repro.api import open_cache
        from repro.api.cache_sqlite import SqliteResultCache
        with open_cache(f"sqlite://{tmp_path}/c.db") as cache:
            assert isinstance(cache, SqliteResultCache)
            assert cache.path == f"{tmp_path}/c.db"

    def test_sqlite_scheme_relative(self, tmp_path, monkeypatch):
        from repro.api import open_cache
        from repro.api.cache_sqlite import SqliteResultCache
        monkeypatch.chdir(tmp_path)
        with open_cache("sqlite://rel.db") as cache:
            assert isinstance(cache, SqliteResultCache)
        assert (tmp_path / "rel.db").exists()

    def test_open_backend_passes_through(self, tmp_path):
        from repro.api import open_cache
        cache = ResultCache(str(tmp_path / "d"))
        assert open_cache(cache) is cache
        cache.close()

    def test_non_string_rejected(self):
        from repro.api import open_cache
        with pytest.raises(TypeError, match="cache URI"):
            open_cache(42)

    def test_unknown_scheme_fails_loudly(self, tmp_path):
        from repro.api import open_cache
        for uri in ("sqlit://typo.db", "redis://host/0", "s3://bucket/key"):
            with pytest.raises(ValueError, match="unknown cache URI scheme"):
                open_cache(uri)
        assert not (tmp_path / "sqlit:").exists()

    def test_empty_locations_fail_with_clear_value_errors(self):
        """``open_cache("jsonl://")`` used to crash with a bare
        ``FileNotFoundError`` out of ``os.makedirs("")`` — empty
        locations must name the offending URI instead."""
        from repro.api import open_cache
        with pytest.raises(ValueError, match="jsonl://"):
            open_cache("jsonl://")
        with pytest.raises(ValueError, match="sqlite://"):
            open_cache("sqlite://")
        with pytest.raises(ValueError, match="empty"):
            open_cache("")
        with pytest.raises(ValueError, match="directory"):
            ResultCache("")
        from repro.api.cache_sqlite import SqliteResultCache
        with pytest.raises(ValueError, match="path"):
            SqliteResultCache("")


class TestFingerprintRoundTrip:
    def test_fingerprint_survives_json_round_trip(self):
        """A request that crosses a JSON boundary (queue spool, HTTP
        service) must keep its fingerprint: integer weights come back as
        floats, and ``4`` vs ``4.0`` must not hash differently — else a
        queue worker can never hit the cache entry its parent wrote."""
        request = _request()
        rebuilt = ScheduleRequest.from_dict(request.to_dict())
        assert request_fingerprint(rebuilt) == request_fingerprint(request)

    def test_int_and_float_weights_fingerprint_identically(self):
        from repro.platform.cluster import Cluster, Processor
        ints = Cluster(name="c", processors=(
            Processor(name="p0", speed=4, memory=16, kind="local"),
            Processor(name="p1", speed=2, memory=8, kind="local")))
        floats = Cluster(name="c", processors=(
            Processor(name="p0", speed=4.0, memory=16.0, kind="local"),
            Processor(name="p1", speed=2.0, memory=8.0, kind="local")))
        assert request_fingerprint(_request(cluster=ints)) == \
            request_fingerprint(_request(cluster=floats))


class TestSqliteThreadSafety:
    def test_concurrent_get_put_hammer(self, tmp_path):
        """One shared connection driven from many threads (the service
        dispatcher pattern) must serialize cleanly: no sqlite3 errors, no
        lost entries, counters that add up."""
        import threading

        from repro.api.cache_sqlite import SqliteResultCache

        request = _request()
        result = solve(request)
        cache = SqliteResultCache(str(tmp_path / "hammer.db"))
        errors = []
        n_threads, n_ops = 8, 40

        def hammer(tid):
            try:
                for i in range(n_ops):
                    fp = f"fp-{tid}-{i}"
                    cache.put(fp, result)
                    assert cache.get(fp, request) is not None
                    cache.put(fp, result)  # duplicate put must dedupe
                    len(cache)
                    assert fp in cache
                    assert f"missing-{tid}-{i}" not in cache
                    assert cache.get(f"missing-{tid}-{i}", request) is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert errors == []
        assert len(cache) == n_threads * n_ops
        stats = cache.stats()
        assert stats["hits"] == n_threads * n_ops
        assert stats["misses"] == n_threads * n_ops
        cache.close()

    def test_two_connections_share_one_database(self, tmp_path):
        """Two independent opens of the same file (two queue workers, or
        worker + parent) see each other's committed puts — WAL + busy
        timeout make the file itself the coordination point."""
        from repro.api.cache_sqlite import SqliteResultCache

        request = _request()
        result = solve(request)
        a = SqliteResultCache(str(tmp_path / "shared.db"))
        b = SqliteResultCache(str(tmp_path / "shared.db"))
        a.put("fp-from-a", result)
        assert b.get("fp-from-a", request) is not None
        b.put("fp-from-b", result)
        assert a.get("fp-from-b", request) is not None
        assert len(a) == len(b) == 2
        a.close()
        b.close()
