"""Tests of the task-level simulator, Gantt export, and the
overestimation claim of Section 3.3."""

import pytest

from repro.core.baseline import dag_het_mem
from repro.core.heuristic import DagHetPartConfig, dag_het_part
from repro.core.mapping import BlockAssignment, Mapping
from repro.core.simulate import (
    gantt_text,
    overestimation_factor,
    schedule_to_dict,
    simulate_task_level,
)
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.platform.presets import default_cluster
from repro.platform.processor import Processor


def _mapping(wf, cluster, blocks, procs):
    cache = RequirementCache(wf)
    assignments = []
    for tasks, proc in zip(blocks, procs):
        res = cache.requirement(tasks)
        assignments.append(BlockAssignment(frozenset(tasks), proc,
                                           res.peak, res.order))
    return Mapping(wf, cluster, assignments, "test")


class TestSimulation:
    def test_single_block_equals_serial_time(self, chain_workflow):
        proc = Processor("p", 2.0, 1e9)
        m = _mapping(chain_workflow, Cluster([proc]), [set("abcd")], [proc])
        makespan, events = simulate_task_level(m)
        assert makespan == pytest.approx(chain_workflow.total_work() / 2.0)
        assert len(events) == 4
        # no gaps on a single processor executing a chain
        events.sort(key=lambda e: e.start)
        for prev, nxt in zip(events, events[1:]):
            assert nxt.start == pytest.approx(prev.finish)

    def test_events_respect_dependencies(self, fig1_workflow, fig1_partition,
                                         unit_cluster):
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition,
                     unit_cluster.processors)
        _, events = simulate_task_level(m)
        finish = {e.task: e.finish for e in events}
        start = {e.task: e.start for e in events}
        for u, v, c in fig1_workflow.edges():
            assert start[v] >= finish[u] - 1e-9  # at least the finish
        assert len(events) == 9

    def test_cross_processor_transfer_delays(self, chain_workflow):
        pa, pb = Processor("pa", 1, 1e9), Processor("pb", 1, 1e9)
        cluster = Cluster([pa, pb], bandwidth=0.5)
        m = _mapping(chain_workflow, cluster, [{"a", "b"}, {"c", "d"}], [pa, pb])
        _, events = simulate_task_level(m)
        start = {e.task: e.start for e in events}
        finish = {e.task: e.finish for e in events}
        # c waits for b's file: transfer = 1.0 / 0.5 = 2.0
        assert start["c"] == pytest.approx(finish["b"] + 2.0)

    def test_task_level_never_exceeds_block_level(self):
        """The paper's bound is an *over*estimation (Section 3.3)."""
        for family in ("blast", "genome", "soykb", "montage"):
            wf = generate_workflow(family, 80, seed=19)
            cluster = scaled_cluster_for(wf, default_cluster())
            mapping = dag_het_mem(wf, cluster)
            factor = overestimation_factor(mapping)
            assert factor >= 1.0 - 1e-9, family

    def test_overestimation_on_heuristic_output(self):
        wf = generate_workflow("bwa", 100, seed=23)
        cluster = scaled_cluster_for(wf, default_cluster())
        mapping = dag_het_part(wf, cluster,
                               DagHetPartConfig(k_prime_strategy="doubling"))
        assert overestimation_factor(mapping) >= 1.0 - 1e-9


class TestExports:
    def test_schedule_dict_fields(self, fig1_workflow, fig1_partition,
                                  unit_cluster):
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition,
                     unit_cluster.processors)
        d = schedule_to_dict(m)
        assert d["block_level_makespan"] == pytest.approx(12.0)
        assert d["task_level_makespan"] <= d["block_level_makespan"] + 1e-9
        assert len(d["tasks"]) == 9
        assert {"task", "processor", "start", "finish"} <= set(d["tasks"][0])

    def test_schedule_json_serializable(self, fig1_workflow, fig1_partition,
                                        unit_cluster):
        import json
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition,
                     unit_cluster.processors)
        json.dumps(schedule_to_dict(m))

    def test_gantt_renders_all_processors(self, fig1_workflow, fig1_partition,
                                          unit_cluster):
        m = _mapping(fig1_workflow, unit_cluster, fig1_partition,
                     unit_cluster.processors)
        text = gantt_text(m)
        for proc in unit_cluster.processors:
            assert proc.name in text
        assert "makespan" in text

    def test_gantt_elides_rows(self):
        wf = generate_workflow("blast", 60, seed=2)
        cluster = scaled_cluster_for(wf, default_cluster())
        mapping = dag_het_part(wf, cluster,
                               DagHetPartConfig(k_prime_strategy="doubling"))
        text = gantt_text(mapping, max_rows=2)
        if mapping.n_blocks > 2:
            assert "elided" in text
