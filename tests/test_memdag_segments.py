"""Tests of hill-valley segment decomposition and merging."""

import itertools

import pytest

from repro.memdag.segments import (
    Segment,
    decompose_profile,
    merge_segment_sequences,
    normalize_segments,
    peak_of_segments,
    profile_of_traversal,
)


class TestProfiles:
    def test_profile_computation(self):
        a = {"u": 5.0, "v": 2.0}
        delta = {"u": -3.0, "v": 1.0}
        tops, residuals = profile_of_traversal(["u", "v"], a, delta)
        assert tops == [5.0, -1.0]
        assert residuals == [-3.0, -2.0]

    def test_decompose_cuts_at_minima(self):
        # u releases memory (new minimum), v producing
        a = {"u": 5.0, "v": 2.0, "w": 1.0}
        delta = {"u": -3.0, "v": 2.0, "w": 1.0}
        segs = decompose_profile(["u", "v", "w"], a, delta)
        assert len(segs) == 2
        assert segs[0].tasks == ("u",)
        assert segs[0].v == pytest.approx(-3.0)
        assert segs[1].tasks == ("v", "w")
        assert segs[1].v == pytest.approx(3.0)

    def test_single_producing_segment(self):
        a = {"x": 4.0}
        delta = {"x": 4.0}
        segs = decompose_profile(["x"], a, delta)
        assert len(segs) == 1
        assert segs[0].h == 4.0 and segs[0].v == 4.0


class TestSegmentAlgebra:
    def test_fuse(self):
        s1 = Segment(("a",), h=5.0, v=-2.0)
        s2 = Segment(("b",), h=4.0, v=1.0)
        fused = s1.fuse(s2)
        assert fused.tasks == ("a", "b")
        assert fused.h == pytest.approx(max(5.0, -2.0 + 4.0))
        assert fused.v == pytest.approx(-1.0)

    def test_key_orders_releasers_first(self):
        releaser = Segment(("r",), h=10.0, v=-1.0)
        producer = Segment(("p",), h=1.0, v=1.0)
        assert releaser.key() < producer.key()

    def test_normalize_fuses_out_of_order(self):
        # producer followed by releaser within one sequence must fuse
        segs = [Segment(("p",), h=2.0, v=2.0), Segment(("r",), h=1.0, v=-3.0)]
        normalized = normalize_segments(segs)
        assert len(normalized) == 1
        assert normalized[0].tasks == ("p", "r")

    def test_normalize_keeps_sorted(self):
        segs = [Segment(("a",), 1.0, -1.0), Segment(("b",), 2.0, -1.0),
                Segment(("c",), 3.0, 3.0)]
        assert normalize_segments(segs) == segs


class TestMerging:
    def _brute_force_peak(self, sequences):
        """Minimum peak over all interleavings preserving sequence order."""
        best = float("inf")
        flat = [(si, i) for si, seq in enumerate(sequences) for i in range(len(seq))]

        def rec(positions, live, peak):
            nonlocal best
            if peak >= best:
                return
            if all(positions[si] == len(sequences[si]) for si in range(len(sequences))):
                best = peak
                return
            for si in range(len(sequences)):
                if positions[si] < len(sequences[si]):
                    seg = sequences[si][positions[si]]
                    positions[si] += 1
                    rec(positions, live + seg.v, max(peak, live + seg.h))
                    positions[si] -= 1

        rec([0] * len(sequences), 0.0, 0.0)
        return best

    def test_merge_is_optimal_on_random_instances(self):
        import numpy as np
        rng = np.random.default_rng(3)
        for trial in range(60):
            sequences = []
            label = itertools.count()
            for _ in range(int(rng.integers(2, 4))):
                raw = []
                for _ in range(int(rng.integers(1, 4))):
                    v = float(rng.integers(-5, 6))
                    h = v + float(rng.integers(0, 6))
                    raw.append(Segment((next(label),), h=max(h, 0.0), v=v))
                sequences.append(raw)
            order, peak = merge_segment_sequences([list(s) for s in sequences])
            brute = self._brute_force_peak(sequences)
            assert peak == pytest.approx(brute), f"trial {trial}"

    def test_merge_preserves_sequence_order(self):
        seq_a = [Segment(("a1",), 3, -1), Segment(("a2",), 5, 2)]
        seq_b = [Segment(("b1",), 1, 1)]
        order, _ = merge_segment_sequences([seq_a, seq_b])
        assert order.index("a1") < order.index("a2")
        assert set(order) == {"a1", "a2", "b1"}

    def test_merge_empty(self):
        order, peak = merge_segment_sequences([])
        assert order == [] and peak == 0.0

    def test_peak_of_segments(self):
        segs = [Segment(("a",), 5, -2), Segment(("b",), 4, 1)]
        assert peak_of_segments(segs) == pytest.approx(max(5.0, -2 + 4))
