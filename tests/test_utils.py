"""Tests for utilities: priority queue, RNG plumbing, stopwatch, errors."""

import time

import numpy as np
import pytest

from repro.utils.errors import (
    CyclicWorkflowError,
    NoFeasibleMappingError,
    ReproError,
)
from repro.utils.pqueue import AddressableMaxPQ
from repro.utils.rng import make_rng, spawn_rngs, stable_hash
from repro.utils.timing import Stopwatch


class TestAddressableMaxPQ:
    def test_extract_max_order(self):
        pq = AddressableMaxPQ([("a", 3), ("b", 7), ("c", 5)])
        assert [pq.extract_max()[0] for _ in range(3)] == ["b", "c", "a"]

    def test_ties_broken_by_insertion_order(self):
        pq = AddressableMaxPQ([("first", 5), ("second", 5)])
        assert pq.extract_max()[0] == "first"

    def test_push_updates_priority(self):
        pq = AddressableMaxPQ([("a", 1), ("b", 2)])
        pq.push("a", 10)
        assert pq.extract_max() == ("a", 10.0)

    def test_remove(self):
        pq = AddressableMaxPQ([("a", 1), ("b", 2)])
        pq.remove("b")
        assert "b" not in pq
        assert len(pq) == 1
        assert pq.extract_max()[0] == "a"

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableMaxPQ().remove("ghost")

    def test_peek_does_not_remove(self):
        pq = AddressableMaxPQ([("a", 1)])
        assert pq.peek() == ("a", 1.0)
        assert len(pq) == 1

    def test_empty_operations_raise(self):
        pq = AddressableMaxPQ()
        with pytest.raises(IndexError):
            pq.peek()
        with pytest.raises(IndexError):
            pq.extract_max()

    def test_priority_lookup(self):
        pq = AddressableMaxPQ([("a", 4.5)])
        assert pq.priority("a") == 4.5

    def test_bool_and_len(self):
        pq = AddressableMaxPQ()
        assert not pq
        pq.push("x", 1)
        assert pq and len(pq) == 1

    def test_stress_against_sorted(self):
        rng = np.random.default_rng(7)
        pq = AddressableMaxPQ()
        reference = {}
        for i in range(500):
            key = int(rng.integers(0, 100))
            prio = float(rng.random())
            pq.push(key, prio)
            reference[key] = prio
        drained = [pq.extract_max() for _ in range(len(pq))]
        assert len(drained) == len(reference)
        assert {k for k, _ in drained} == set(reference)
        priorities = [p for _, p in drained]
        assert priorities == sorted(priorities, reverse=True)


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(0, 3)
        seqs = [c.random(4).tolist() for c in children]
        assert seqs[0] != seqs[1] != seqs[2]

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(5, 2)]
        b = [g.random() for g in spawn_rngs(5, 2)]
        assert a == b

    def test_stable_hash_deterministic(self):
        assert stable_hash("blast:200") == stable_hash("blast:200")
        assert stable_hash("a") != stable_hash("b")
        assert 0 <= stable_hash("anything") < 2 ** 63


class TestStopwatch:
    def test_lap_accumulates(self):
        watch = Stopwatch()
        with watch.lap("phase"):
            time.sleep(0.01)
        with watch.lap("phase"):
            time.sleep(0.01)
        assert watch.laps["phase"] >= 0.02

    def test_nested_lap_rejected(self):
        watch = Stopwatch()
        watch.start("a")
        with pytest.raises(RuntimeError):
            watch.start("b")
        watch.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_total(self):
        watch = Stopwatch()
        with watch.lap("a"):
            pass
        with watch.lap("b"):
            pass
        assert watch.total() == pytest.approx(sum(watch.laps.values()))


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(CyclicWorkflowError, ReproError)
        assert issubclass(NoFeasibleMappingError, ReproError)

    def test_cycle_message_includes_nodes(self):
        err = CyclicWorkflowError(["a", "b"])
        assert "a" in str(err)
        assert err.cycle == ["a", "b"]

    def test_no_feasible_mapping_records_unplaced(self):
        err = NoFeasibleMappingError("nope", unplaced_tasks=7)
        assert err.unplaced_tasks == 7
