"""Tests of processors, clusters, and the paper's presets (Tables 2-3)."""

import pytest

from repro.platform.cluster import Cluster
from repro.platform.presets import (
    MACHINE_KINDS,
    MACHINE_KINDS_LESSHET,
    MACHINE_KINDS_MOREHET,
    cluster_by_name,
    default_cluster,
    large_cluster,
    lesshet_cluster,
    morehet_cluster,
    nohet_cluster,
    small_cluster,
)
from repro.platform.processor import Processor


class TestProcessor:
    def test_execution_time(self):
        p = Processor("p", speed=4.0, memory=16.0)
        assert p.execution_time(8.0) == 2.0

    def test_fits(self):
        p = Processor("p", speed=1.0, memory=16.0)
        assert p.fits(16.0)
        assert not p.fits(16.1)

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            Processor("p", speed=0.0, memory=1.0)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            Processor("p", speed=1.0, memory=-1.0)


class TestCluster:
    def test_duplicate_names_rejected(self):
        procs = [Processor("same", 1, 1), Processor("same", 2, 2)]
        with pytest.raises(ValueError, match="duplicate"):
            Cluster(procs)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Cluster([Processor("p", 1, 1)], bandwidth=0.0)

    def test_by_memory_desc_deterministic(self, tiny_hetero_cluster):
        names = [p.name for p in tiny_hetero_cluster.by_memory_desc()]
        assert names == ["big", "slow", "fast", "tiny"]

    def test_by_speed_desc(self, tiny_hetero_cluster):
        names = [p.name for p in tiny_hetero_cluster.by_speed_desc()]
        assert names == ["fast", "tiny", "big", "slow"]

    def test_smallest_memory_processor(self, tiny_hetero_cluster):
        assert tiny_hetero_cluster.smallest_memory_processor().name == "tiny"

    def test_with_bandwidth(self, tiny_hetero_cluster):
        c2 = tiny_hetero_cluster.with_bandwidth(5.0)
        assert c2.bandwidth == 5.0
        assert c2.k == tiny_hetero_cluster.k
        assert tiny_hetero_cluster.bandwidth == 1.0  # original unchanged

    def test_scaled_memories(self, tiny_hetero_cluster):
        scaled = tiny_hetero_cluster.scaled_memories(2.0)
        assert scaled["big"].memory == 200.0
        assert scaled["big"].speed == tiny_hetero_cluster["big"].speed

    def test_communication_time(self, tiny_hetero_cluster):
        assert tiny_hetero_cluster.communication_time(10.0) == 10.0
        assert tiny_hetero_cluster.with_bandwidth(2.0).communication_time(10.0) == 5.0

    def test_lookup(self, tiny_hetero_cluster):
        assert "fast" in tiny_hetero_cluster
        assert tiny_hetero_cluster["fast"].speed == 8.0


class TestPresets:
    """The presets must never drift from Tables 2 and 3."""

    def test_table2_values(self):
        assert MACHINE_KINDS == [
            ("local", 4, 16), ("A1", 32, 32), ("A2", 6, 64),
            ("N1", 12, 16), ("N2", 8, 8), ("C2", 32, 192),
        ]

    def test_table3_morehet(self):
        assert MACHINE_KINDS_MOREHET == [
            ("local*", 2, 8), ("A1*", 64, 64), ("A2*", 3, 128),
            ("N1*", 24, 8), ("N2*", 4, 4), ("C2*", 64, 384),
        ]

    def test_table3_lesshet_keeps_192(self):
        assert MACHINE_KINDS_LESSHET[-1] == ("C2'", 16, 192)

    def test_default_cluster_has_36_nodes(self):
        cluster = default_cluster()
        assert cluster.k == 36
        kinds = {p.kind for p in cluster}
        assert kinds == {"local", "A1", "A2", "N1", "N2", "C2"}

    def test_small_and_large_sizes(self):
        assert small_cluster().k == 18
        assert large_cluster().k == 60

    def test_nohet_is_all_c2(self):
        cluster = nohet_cluster()
        assert cluster.k == 36
        assert all(p.speed == 32 and p.memory == 192 for p in cluster)

    def test_morehet_widened_spread(self):
        default_speeds = [s for _, s, _ in MACHINE_KINDS]
        morehet_speeds = [p.speed for p in morehet_cluster()]
        assert max(morehet_speeds) / min(morehet_speeds) > \
            max(default_speeds) / min(default_speeds)

    def test_lesshet_narrowed_spread(self):
        lesshet_speeds = [p.speed for p in lesshet_cluster()]
        default_speeds = [s for _, s, _ in MACHINE_KINDS]
        assert max(lesshet_speeds) / min(lesshet_speeds) < \
            max(default_speeds) / min(default_speeds)

    def test_cluster_by_name(self):
        assert cluster_by_name("default").k == 36
        assert cluster_by_name("large", bandwidth=2.0).bandwidth == 2.0
        with pytest.raises(KeyError, match="valid"):
            cluster_by_name("nonexistent")
