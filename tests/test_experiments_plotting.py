"""Tests of the ASCII plotting helpers."""

import pytest

from repro.experiments.plotting import (
    ascii_bar_chart,
    ascii_line_plot,
    figure_series,
)


class TestLinePlot:
    def test_renders_all_series_markers(self):
        text = ascii_line_plot({
            "alpha": {1.0: 10.0, 2.0: 20.0},
            "beta": {1.0: 5.0, 2.0: 25.0},
        }, title="T")
        assert "T" in text
        assert "o=alpha" in text
        assert "x=beta" in text

    def test_axis_labels(self):
        text = ascii_line_plot({"s": {0.0: 0.0, 1.0: 1.0}},
                               x_label="n_tasks", y_label="makespan")
        assert "x: n_tasks" in text
        assert "y: makespan" in text

    def test_extremes_on_border(self):
        text = ascii_line_plot({"s": {0.0: 0.0, 10.0: 100.0}}, height=8)
        lines = [l for l in text.splitlines() if "|" in l]
        assert "o" in lines[0]        # max y in the top row
        assert "o" in lines[-1]       # min y in the bottom row

    def test_empty(self):
        assert "(no data)" in ascii_line_plot({})

    def test_constant_series_no_division_error(self):
        text = ascii_line_plot({"s": {1.0: 5.0, 2.0: 5.0}})
        assert "o" in text


class TestBarChart:
    def test_bars_proportional(self):
        text = ascii_bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert "(no data)" in ascii_bar_chart({})

    def test_value_formatting(self):
        text = ascii_bar_chart({"x": 3.14159}, fmt="{:.2f}")
        assert "3.14" in text


class TestFigureSeries:
    def test_pivot(self):
        rows = [
            {"family": "blast", "n_tasks": 10, "rel": 80.0},
            {"family": "blast", "n_tasks": 20, "rel": 70.0},
            {"family": "soykb", "n_tasks": 10, "rel": 95.0},
        ]
        series = figure_series(rows, "n_tasks", "rel", "family")
        assert series["blast"] == {10.0: 80.0, 20.0: 70.0}
        assert series["soykb"] == {10.0: 95.0}
