"""Tests of the command-line interface (direct main() invocation)."""

import json

import pytest

from repro.cli import main


class TestGenerate:
    def test_generate_json(self, tmp_path):
        out = tmp_path / "wf.json"
        rc = main(["generate", "--family", "blast", "-n", "30",
                   "--seed", "1", "-o", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert len(data["tasks"]) >= 25

    def test_generate_dot(self, tmp_path):
        out = tmp_path / "wf.dot"
        rc = main(["generate", "--family", "bwa", "-n", "20", "-o", str(out)])
        assert rc == 0
        assert "digraph" in out.read_text()

    def test_generate_real_world(self, tmp_path):
        out = tmp_path / "real.json"
        rc = main(["generate", "--family", "airrflow", "-o", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert len(data["tasks"]) == 11


class TestSchedule:
    def test_schedule_generated(self, capsys):
        rc = main(["schedule", "--family", "blast", "-n", "40", "--seed", "2",
                   "--k-strategy", "doubling"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "DagHetPart" in out

    def test_schedule_baseline(self, capsys):
        rc = main(["schedule", "--family", "bwa", "-n", "30",
                   "--algorithm", "daghetmem"])
        assert rc == 0
        assert "DagHetMem" in capsys.readouterr().out

    def test_schedule_heftlist_skips_memory_validation(self, capsys):
        # memory-oblivious mappings may exceed processor memories; the CLI
        # must report them, not crash on validate()
        rc = main(["schedule", "--family", "genome", "-n", "150",
                   "--algorithm", "heftlist"])
        assert rc == 0
        assert "HeftList" in capsys.readouterr().out

    def test_schedule_from_file_with_gantt(self, tmp_path, capsys):
        wf_path = tmp_path / "wf.json"
        main(["generate", "--family", "seismology", "-n", "25", "-o", str(wf_path)])
        capsys.readouterr()
        rc = main(["schedule", "--workflow", str(wf_path), "--gantt",
                   "--k-strategy", "doubling"])
        assert rc == 0
        assert "task-level makespan" in capsys.readouterr().out

    def test_schedule_json_export(self, tmp_path):
        out = tmp_path / "sched.json"
        rc = main(["schedule", "--family", "blast", "-n", "30",
                   "--k-strategy", "doubling", "--json", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["task_level_makespan"] <= data["block_level_makespan"] + 1e-9

    def test_schedule_reports_winning_k_prime(self, capsys):
        rc = main(["schedule", "--family", "blast", "-n", "40", "--seed", "2",
                   "--k-strategy", "doubling"])
        assert rc == 0
        assert "k'        :" in capsys.readouterr().out

    def test_unknown_family_lists_valid_names(self):
        with pytest.raises(SystemExit) as exc:
            main(["schedule", "--family", "frobnicate"])
        message = str(exc.value)
        assert "unknown workflow family 'frobnicate'" in message
        assert "blast" in message  # generator families listed
        assert "airrflow" in message  # real-world models listed

    def test_infeasible_returns_2(self, tmp_path, capsys):
        # a workflow too big for the unscaled default cluster
        wf_path = tmp_path / "wf.json"
        main(["generate", "--family", "seismology", "-n", "300",
              "-o", str(wf_path)])
        rc = main(["schedule", "--workflow", str(wf_path),
                   "--no-scale-memory", "--k-strategy", "doubling"])
        assert rc == 2


class TestExperimentAndInfo:
    def test_experiment_table2(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "C2" in out and "192" in out

    def test_experiment_with_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "400")  # tiny corpus
        out = tmp_path / "rows.json"
        rc = main(["experiment", "fig3_left", "--families", "blast",
                   "--json", str(out)])
        assert rc == 0
        rows = json.loads(out.read_text())
        assert any(r["workflow_type"] == "all" for r in rows)

    def test_info(self, capsys):
        rc = main(["info"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "blast" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestScenario:
    def _write_spec(self, tmp_path):
        from repro.api import (AlgorithmSpec, FamilyGridSource, PlatformAxis,
                               ScenarioSpec, save_scenario)
        spec = ScenarioSpec(
            name="cli-tiny",
            workflows=(FamilyGridSource(families=("blast",),
                                        sizes={"small": (24,)}),),
            platforms=(PlatformAxis(preset="default"),),
            algorithms=(AlgorithmSpec("daghetmem"),
                        AlgorithmSpec("daghetpart",
                                      config={"k_prime_values": [1, 4]})),
        )
        path = str(tmp_path / "spec.json")
        save_scenario(spec, path)
        return path

    def test_scenario_run(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        rc = main(["scenario", "run", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-tiny" in out
        assert "scheduled : 2/2" in out

    def test_scenario_run_cached_twice(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        cache = str(tmp_path / "cache")
        rc = main(["scenario", "run", path, "--cache-dir", cache])
        assert rc == 0
        assert "misses=2" in capsys.readouterr().out
        rc = main(["scenario", "run", path, "--cache-dir", cache])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hits=2" in out and "misses=0" in out

    def test_scenario_run_writes_jsonl(self, tmp_path, capsys):
        from repro.api import ScheduleResult
        path = self._write_spec(tmp_path)
        out_path = tmp_path / "results.jsonl"
        rc = main(["scenario", "run", path, "--json", str(out_path)])
        assert rc == 0
        lines = [l for l in out_path.read_text().splitlines() if l]
        assert len(lines) == 2
        results = [ScheduleResult.from_json(l) for l in lines]
        assert {r.algorithm for r in results} == {"DagHetMem", "DagHetPart"}

    def test_scenario_run_missing_spec_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["scenario", "run", str(tmp_path / "nope.json")])
