"""Tests of the command-line interface (direct main() invocation)."""

import json

import pytest

from repro.cli import main


class TestGenerate:
    def test_generate_json(self, tmp_path):
        out = tmp_path / "wf.json"
        rc = main(["generate", "--family", "blast", "-n", "30",
                   "--seed", "1", "-o", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert len(data["tasks"]) >= 25

    def test_generate_dot(self, tmp_path):
        out = tmp_path / "wf.dot"
        rc = main(["generate", "--family", "bwa", "-n", "20", "-o", str(out)])
        assert rc == 0
        assert "digraph" in out.read_text()

    def test_generate_real_world(self, tmp_path):
        out = tmp_path / "real.json"
        rc = main(["generate", "--family", "airrflow", "-o", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert len(data["tasks"]) == 11


class TestSchedule:
    def test_schedule_generated(self, capsys):
        rc = main(["schedule", "--family", "blast", "-n", "40", "--seed", "2",
                   "--k-strategy", "doubling"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "DagHetPart" in out

    def test_schedule_baseline(self, capsys):
        rc = main(["schedule", "--family", "bwa", "-n", "30",
                   "--algorithm", "daghetmem"])
        assert rc == 0
        assert "DagHetMem" in capsys.readouterr().out

    def test_schedule_heftlist_skips_memory_validation(self, capsys):
        # memory-oblivious mappings may exceed processor memories; the CLI
        # must report them, not crash on validate()
        rc = main(["schedule", "--family", "genome", "-n", "150",
                   "--algorithm", "heftlist"])
        assert rc == 0
        assert "HeftList" in capsys.readouterr().out

    def test_schedule_from_file_with_gantt(self, tmp_path, capsys):
        wf_path = tmp_path / "wf.json"
        main(["generate", "--family", "seismology", "-n", "25", "-o", str(wf_path)])
        capsys.readouterr()
        rc = main(["schedule", "--workflow", str(wf_path), "--gantt",
                   "--k-strategy", "doubling"])
        assert rc == 0
        assert "task-level makespan" in capsys.readouterr().out

    def test_schedule_json_export(self, tmp_path):
        out = tmp_path / "sched.json"
        rc = main(["schedule", "--family", "blast", "-n", "30",
                   "--k-strategy", "doubling", "--json", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["task_level_makespan"] <= data["block_level_makespan"] + 1e-9

    def test_schedule_reports_winning_k_prime(self, capsys):
        rc = main(["schedule", "--family", "blast", "-n", "40", "--seed", "2",
                   "--k-strategy", "doubling"])
        assert rc == 0
        assert "k'        :" in capsys.readouterr().out

    def test_unknown_family_lists_valid_names(self):
        with pytest.raises(SystemExit) as exc:
            main(["schedule", "--family", "frobnicate"])
        message = str(exc.value)
        assert "unknown workflow family 'frobnicate'" in message
        assert "blast" in message  # generator families listed
        assert "airrflow" in message  # real-world models listed

    def test_infeasible_returns_2(self, tmp_path, capsys):
        # a workflow too big for the unscaled default cluster
        wf_path = tmp_path / "wf.json"
        main(["generate", "--family", "seismology", "-n", "300",
              "-o", str(wf_path)])
        rc = main(["schedule", "--workflow", str(wf_path),
                   "--no-scale-memory", "--k-strategy", "doubling"])
        assert rc == 2


class TestExperimentAndInfo:
    def test_experiment_table2(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "C2" in out and "192" in out

    def test_experiment_with_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "400")  # tiny corpus
        out = tmp_path / "rows.json"
        rc = main(["experiment", "fig3_left", "--families", "blast",
                   "--json", str(out)])
        assert rc == 0
        rows = json.loads(out.read_text())
        assert any(r["workflow_type"] == "all" for r in rows)

    def test_info(self, capsys):
        rc = main(["info"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "blast" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestScenario:
    def _write_spec(self, tmp_path):
        from repro.api import (AlgorithmSpec, FamilyGridSource, PlatformAxis,
                               ScenarioSpec, save_scenario)
        spec = ScenarioSpec(
            name="cli-tiny",
            workflows=(FamilyGridSource(families=("blast",),
                                        sizes={"small": (24,)}),),
            platforms=(PlatformAxis(preset="default"),),
            algorithms=(AlgorithmSpec("daghetmem"),
                        AlgorithmSpec("daghetpart",
                                      config={"k_prime_values": [1, 4]})),
        )
        path = str(tmp_path / "spec.json")
        save_scenario(spec, path)
        return path

    def test_scenario_run(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        rc = main(["scenario", "run", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-tiny" in out
        assert "scheduled : 2/2" in out

    def test_scenario_run_cached_twice(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        cache = str(tmp_path / "cache")
        rc = main(["scenario", "run", path, "--cache-dir", cache])
        assert rc == 0
        assert "misses=2" in capsys.readouterr().out
        rc = main(["scenario", "run", path, "--cache-dir", cache])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hits=2" in out and "misses=0" in out

    def test_scenario_run_writes_jsonl(self, tmp_path, capsys):
        from repro.api import ScheduleResult
        path = self._write_spec(tmp_path)
        out_path = tmp_path / "results.jsonl"
        rc = main(["scenario", "run", path, "--json", str(out_path)])
        assert rc == 0
        lines = [l for l in out_path.read_text().splitlines() if l]
        assert len(lines) == 2
        results = [ScheduleResult.from_json(l) for l in lines]
        assert {r.algorithm for r in results} == {"DagHetMem", "DagHetPart"}

    def test_scenario_run_missing_spec_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["scenario", "run", str(tmp_path / "nope.json")])

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_scenario_run_backend_flag(self, tmp_path, capsys, backend):
        path = self._write_spec(tmp_path)
        rc = main(["scenario", "run", path, "--backend", backend, "-j", "2"])
        assert rc == 0
        assert "scheduled : 2/2" in capsys.readouterr().out

    def test_scenario_run_sqlite_cache_uri(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        uri = f"sqlite://{tmp_path}/cache.db"
        rc = main(["scenario", "run", path, "--cache", uri])
        assert rc == 0
        assert "misses=2" in capsys.readouterr().out
        rc = main(["scenario", "run", path, "--cache", uri])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hits=2" in out and "misses=0" in out
        assert (tmp_path / "cache.db").exists()

    def test_scenario_run_timeout_flag_reports_timeouts(self, tmp_path,
                                                        capsys):
        import time as time_module

        from repro.api import register_algorithm, unregister_algorithm
        from repro.api import (AlgorithmSpec, FamilyGridSource, ScenarioSpec,
                               save_scenario)

        @register_algorithm("clislow", summary="sleeps (CLI timeout test)")
        def clislow(workflow, cluster, config=None):
            time_module.sleep(30.0)
            raise AssertionError("unreachable")

        spec = ScenarioSpec(
            name="cli-timeout",
            workflows=(FamilyGridSource(families=("blast",),
                                        sizes={"small": (24,)}),),
            algorithms=(AlgorithmSpec("clislow"),),
        )
        path = str(tmp_path / "slow.json")
        save_scenario(spec, path)
        try:
            rc = main(["scenario", "run", path, "--timeout", "0.2",
                       "--json", str(tmp_path / "out.jsonl")])
        finally:
            unregister_algorithm("clislow")
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 timed out" in out
        record = json.loads((tmp_path / "out.jsonl").read_text())
        assert record["failure"]["kind"] == "timeout"


class TestScenarioDiff:
    def _run_to_jsonl(self, tmp_path, name, mutate=None):
        from repro.api import collect_scenario
        from repro.api import (AlgorithmSpec, FamilyGridSource, ScenarioSpec)
        spec = ScenarioSpec(
            name="diff-tiny",
            workflows=(FamilyGridSource(families=("blast", "bwa"),
                                        sizes={"small": (24,)}),),
            algorithms=(AlgorithmSpec("daghetmem"),),
        )
        records = [r.to_dict() for r in collect_scenario(spec)]
        if mutate is not None:
            mutate(records)
        path = tmp_path / name
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return str(path)

    def test_identical_runs_agree(self, tmp_path, capsys):
        a = self._run_to_jsonl(tmp_path, "a.jsonl")
        b = self._run_to_jsonl(tmp_path, "b.jsonl",
                               mutate=lambda rs: [r.update(runtime=1e9)
                                                  for r in rs])
        rc = main(["scenario", "diff", a, b])
        assert rc == 0  # runtime deltas are not differences
        out = capsys.readouterr().out
        assert "matched   : 2" in out
        assert "runs agree" in out

    def test_makespan_delta_detected(self, tmp_path, capsys):
        a = self._run_to_jsonl(tmp_path, "a.jsonl")

        def slower(records):
            records[0]["makespan"] *= 1.5

        b = self._run_to_jsonl(tmp_path, "b.jsonl", mutate=slower)
        rc = main(["scenario", "diff", a, b])
        assert rc == 1
        out = capsys.readouterr().out
        assert "makespan deltas (1):" in out and "+50.000%" in out

    def test_new_failure_and_missing_detected(self, tmp_path, capsys):
        a = self._run_to_jsonl(tmp_path, "a.jsonl")

        def broken(records):
            records[0]["failure"] = {"kind": "NoFeasibleMappingError",
                                     "message": "x", "unplaced_tasks": 3}
            records[0]["makespan"] = None
            del records[1]

        b = self._run_to_jsonl(tmp_path, "b.jsonl", mutate=broken)
        rc = main(["scenario", "diff", a, b])
        assert rc == 1
        out = capsys.readouterr().out
        assert "new failures" in out and "NoFeasibleMappingError" in out
        assert "only in" in out and "missing from" in out

    def test_conflicting_duplicates_are_not_agreement(self, tmp_path,
                                                      capsys):
        """Two records the identity key cannot tell apart (same algorithm,
        two configs, no distinguishing tag) with different outcomes must
        fail the gate, not silently collapse."""
        def clone_with_other_makespan(records):
            twin = dict(records[0])
            twin["makespan"] = (twin["makespan"] or 0) * 2
            records.append(twin)

        a = self._run_to_jsonl(tmp_path, "a.jsonl",
                               mutate=clone_with_other_makespan)
        b = self._run_to_jsonl(tmp_path, "b.jsonl",
                               mutate=clone_with_other_makespan)
        rc = main(["scenario", "diff", a, b])
        assert rc == 1
        out = capsys.readouterr().out
        assert "ambiguous records" in out and "distinguishing tag" in out

    def test_changed_failure_kind_detected(self, tmp_path, capsys):
        def fail(kind):
            def mutate(records):
                records[0]["failure"] = {"kind": kind, "message": "x",
                                         "unplaced_tasks": 0}
                records[0]["makespan"] = None
            return mutate

        a = self._run_to_jsonl(tmp_path, "a.jsonl",
                               mutate=fail("NoFeasibleMappingError"))
        b = self._run_to_jsonl(tmp_path, "b.jsonl", mutate=fail("timeout"))
        rc = main(["scenario", "diff", a, b])
        assert rc == 1  # infeasible -> timeout is not agreement
        out = capsys.readouterr().out
        assert "failure kind changed" in out
        assert "NoFeasibleMappingError -> timeout" in out

    def test_tolerance_flag(self, tmp_path, capsys):
        a = self._run_to_jsonl(tmp_path, "a.jsonl")

        def nudge(records):
            for r in records:
                r["makespan"] *= 1.0001

        b = self._run_to_jsonl(tmp_path, "b.jsonl", mutate=nudge)
        assert main(["scenario", "diff", a, b]) == 1
        capsys.readouterr()
        assert main(["scenario", "diff", a, b, "--tolerance", "0.01"]) == 0


class TestPolicyOverrideMerge:
    def test_retries_flag_keeps_spec_timeout(self, tmp_path, monkeypatch):
        """--retries alone must not discard the spec's hang guard."""
        from repro.api import (AlgorithmSpec, ExecutionPolicy, ExecutionSpec,
                               FamilyGridSource, ScenarioSpec, save_scenario)
        import repro.cli as cli_module

        spec = ScenarioSpec(
            name="merge-test",
            workflows=(FamilyGridSource(families=("blast",),
                                        sizes={"small": (24,)}),),
            algorithms=(AlgorithmSpec("daghetmem"),),
            execution=ExecutionSpec(policy=ExecutionPolicy(
                timeout_s=300.0, retry_backoff=0.5, on_timeout="requeue")),
        )
        path = str(tmp_path / "spec.json")
        save_scenario(spec, path)

        seen = {}
        real = cli_module.run_scenario

        def spy(spec, **kwargs):
            seen["policy"] = spec.execution.policy
            return real(spec, **kwargs)

        monkeypatch.setattr(cli_module, "run_scenario", spy)
        assert main(["scenario", "run", path, "--retries", "3"]) == 0
        assert seen["policy"] == ExecutionPolicy(
            timeout_s=300.0, retries=3, retry_backoff=0.5,
            on_timeout="requeue")
        # an explicit 0 is an override too: it switches retries off
        assert main(["scenario", "run", path, "--retries", "0"]) == 0
        assert seen["policy"].retries == 0
        assert seen["policy"].timeout_s == 300.0


class TestScheduleTimeout:
    def test_schedule_timeout_exit_code(self, capsys):
        import time as time_module

        from repro.api import register_algorithm, unregister_algorithm

        @register_algorithm("schedslow", summary="sleeps (CLI timeout test)")
        def schedslow(workflow, cluster, config=None):
            time_module.sleep(30.0)
            raise AssertionError("unreachable")

        try:
            rc = main(["schedule", "--family", "blast", "-n", "24",
                       "--algorithm", "schedslow", "--timeout", "0.2"])
        finally:
            unregister_algorithm("schedslow")
        assert rc == 3
        assert "timed out" in capsys.readouterr().err


class TestProfile:
    def test_profile_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(["profile", "--n", "600", "--repeats", "1",
                   "--cases", "bottom_fan,slack_order", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert set(report["cases"]) == {"bottom_fan", "slack_order"}
        for case in report["cases"].values():
            assert case["equal"] is True
            assert case["reference_s"] > 0
        assert "speedup" in capsys.readouterr().out

    def test_profile_check_passes_against_itself(self, tmp_path, capsys):
        out = tmp_path / "base.json"
        assert main(["profile", "--n", "600", "--repeats", "1",
                     "--cases", "slack_order", "--out", str(out)]) == 0
        # generous tolerance: the same machine re-measures within 1000x
        rc = main(["profile", "--n", "600", "--repeats", "1",
                   "--cases", "slack_order", "--check", str(out),
                   "--tolerance", "0.001"])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_profile_check_fails_on_regression(self, tmp_path, capsys):
        out = tmp_path / "base.json"
        assert main(["profile", "--n", "600", "--repeats", "1",
                     "--cases", "slack_order", "--out", str(out)]) == 0
        # an impossible baseline: demand 1e6x the measured speedup
        base = json.loads(out.read_text())
        base["cases"]["slack_order"]["speedup"] *= 1e6
        out.write_text(json.dumps(base))
        rc = main(["profile", "--n", "600", "--repeats", "1",
                   "--cases", "slack_order", "--check", str(out)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_profile_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            main(["profile", "--n", "100", "--cases", "nonsense"])
