"""Tests of the request/result envelopes: failures, JSON round trip."""

import dataclasses
import json
import math

import pytest

from repro.api import (
    FailureInfo,
    ScheduleRequest,
    ScheduleResult,
    SweepPoint,
    solve,
)
from repro.core.heuristic import DagHetPartConfig
from repro.generators.families import generate_workflow
from repro.platform.cluster import Cluster
from repro.platform.presets import default_cluster
from repro.platform.processor import Processor
from repro.utils.errors import (
    CyclicWorkflowError,
    InvalidPartitionError,
    NoFeasibleMappingError,
    ReproError,
)

FAST_CFG = DagHetPartConfig(k_prime_values=(1, 4))


def _success_result():
    wf = generate_workflow("blast", 24, seed=1)
    return solve(ScheduleRequest(workflow=wf, cluster=default_cluster(),
                                 algorithm="daghetpart", config=FAST_CFG,
                                 scale_memory=True,
                                 tags={"instance": "blast-24", "n_tasks": 24}))


def _failed_result():
    wf = generate_workflow("blast", 24, seed=1)
    tiny = Cluster([Processor("p0", 1.0, 0.001)])
    return solve(ScheduleRequest(workflow=wf, cluster=tiny,
                                 algorithm="daghetpart", config=FAST_CFG,
                                 tags={"instance": "blast-24"}))


class TestFailureInfo:
    def test_from_exception_captures_unplaced(self):
        info = FailureInfo.from_exception(
            NoFeasibleMappingError("too small", unplaced_tasks=7))
        assert info.kind == "NoFeasibleMappingError"
        assert info.unplaced_tasks == 7
        assert "too small" in str(info)

    @pytest.mark.parametrize("exc", [
        NoFeasibleMappingError("m", unplaced_tasks=3),
        CyclicWorkflowError(message="m"),
        InvalidPartitionError("m"),
        ReproError("m"),
    ])
    def test_to_exception_roundtrip(self, exc):
        back = FailureInfo.from_exception(exc).to_exception()
        assert type(back) is type(exc)
        assert str(back) == str(exc)

    def test_unknown_kind_falls_back_to_repro_error(self):
        assert isinstance(FailureInfo("Weird", "m").to_exception(), ReproError)


class TestScheduleResult:
    def test_success_envelope(self):
        r = _success_result()
        assert r.success and r.failure is None
        assert r.algorithm == "DagHetPart"
        assert r.makespan > 0 and r.runtime >= 0 and r.n_blocks >= 1
        assert r.k_prime in (1, 4)
        assert [p.k_prime for p in r.sweep] == [1, 4]
        assert any(p.status == "ok" for p in r.sweep)
        assert r.mapping is not None
        assert r.mapping.makespan() == pytest.approx(r.makespan)
        assert r.raise_if_failed() is r

    def test_failure_envelope(self):
        r = _failed_result()
        assert not r.success
        assert r.failure.kind == "NoFeasibleMappingError"
        assert r.failure.unplaced_tasks == r.n_tasks > 0
        assert math.isinf(r.makespan)
        assert r.n_blocks == 0 and r.mapping is None and r.k_prime is None
        # the sweep trace survives the failure: every candidate was tried
        # (only k'=1 is a valid candidate on a 1-processor cluster)
        assert [p.status for p in r.sweep] == ["infeasible"]
        with pytest.raises(NoFeasibleMappingError):
            r.raise_if_failed()

    def test_result_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            _success_result().makespan = 0.0

    def test_without_mapping(self):
        r = _success_result()
        stripped = r.without_mapping()
        assert stripped.mapping is None
        assert stripped == r  # mapping is excluded from comparison


class TestJsonRoundTrip:
    def test_success_roundtrips_bit_for_bit(self):
        r = _success_result()
        text = r.to_json()
        back = ScheduleResult.from_json(text)
        assert back.to_json() == text
        assert back == r.without_mapping()
        assert back.mapping is None
        assert back.tags == {"instance": "blast-24", "n_tasks": 24}
        assert back.sweep == r.sweep

    def test_failure_roundtrips_bit_for_bit(self):
        r = _failed_result()
        text = r.to_json()
        # strict RFC 8259 JSON: the inf makespan serializes as null, not
        # the non-standard Infinity literal (which jq/JS reject)
        assert "Infinity" not in text
        back = ScheduleResult.from_json(text)
        assert back.to_json() == text
        assert back == r
        assert back.failure == r.failure
        assert math.isinf(back.makespan)
        with pytest.raises(NoFeasibleMappingError):
            back.raise_if_failed()

    def test_json_is_deterministic_and_sorted(self):
        r = _success_result()
        assert r.to_json() == r.to_json()
        data = json.loads(r.to_json())
        assert list(data) == sorted(data)

    def test_dict_roundtrip_preserves_sweep_points(self):
        r = _success_result()
        back = ScheduleResult.from_dict(r.to_dict())
        assert all(isinstance(p, SweepPoint) for p in back.sweep)
        assert back.sweep == r.sweep
