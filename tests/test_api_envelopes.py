"""Tests of the request/result envelopes: failures, JSON round trip.

The property-style classes at the bottom sweep randomized envelopes —
arbitrary tags, configs, sweep traces, and non-finite floats — through
``to_json``/``from_json`` and hold the serialization to its contract:
**bit-for-bit round trip or explicit rejection**, never a silent
mutation (the one representational choice, ``+inf`` makespan ⇄ ``null``,
is itself round-trip-exact).
"""

import dataclasses
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    AnnealConfig,
    FailureInfo,
    PortfolioConfig,
    ScheduleRequest,
    ScheduleResult,
    SweepPoint,
    solve,
)
from repro.core.heuristic import DagHetPartConfig
from repro.generators.families import generate_workflow
from repro.platform.cluster import Cluster
from repro.platform.presets import default_cluster
from repro.platform.processor import Processor
from repro.utils.errors import (
    CyclicWorkflowError,
    InvalidPartitionError,
    NoFeasibleMappingError,
    ReproError,
)
from repro.workflow.graph import Workflow
from repro.workflow.io import workflow_to_dict

FAST_CFG = DagHetPartConfig(k_prime_values=(1, 4))


def _success_result():
    wf = generate_workflow("blast", 24, seed=1)
    return solve(ScheduleRequest(workflow=wf, cluster=default_cluster(),
                                 algorithm="daghetpart", config=FAST_CFG,
                                 scale_memory=True,
                                 tags={"instance": "blast-24", "n_tasks": 24}))


def _failed_result():
    wf = generate_workflow("blast", 24, seed=1)
    tiny = Cluster([Processor("p0", 1.0, 0.001)])
    return solve(ScheduleRequest(workflow=wf, cluster=tiny,
                                 algorithm="daghetpart", config=FAST_CFG,
                                 tags={"instance": "blast-24"}))


class TestFailureInfo:
    def test_from_exception_captures_unplaced(self):
        info = FailureInfo.from_exception(
            NoFeasibleMappingError("too small", unplaced_tasks=7))
        assert info.kind == "NoFeasibleMappingError"
        assert info.unplaced_tasks == 7
        assert "too small" in str(info)

    @pytest.mark.parametrize("exc", [
        NoFeasibleMappingError("m", unplaced_tasks=3),
        CyclicWorkflowError(message="m"),
        InvalidPartitionError("m"),
        ReproError("m"),
    ])
    def test_to_exception_roundtrip(self, exc):
        back = FailureInfo.from_exception(exc).to_exception()
        assert type(back) is type(exc)
        assert str(back) == str(exc)

    def test_unknown_kind_falls_back_to_repro_error(self):
        assert isinstance(FailureInfo("Weird", "m").to_exception(), ReproError)


class TestScheduleResult:
    def test_success_envelope(self):
        r = _success_result()
        assert r.success and r.failure is None
        assert r.algorithm == "DagHetPart"
        assert r.makespan > 0 and r.runtime >= 0 and r.n_blocks >= 1
        assert r.k_prime in (1, 4)
        assert [p.k_prime for p in r.sweep] == [1, 4]
        assert any(p.status == "ok" for p in r.sweep)
        assert r.mapping is not None
        assert r.mapping.makespan() == pytest.approx(r.makespan)
        assert r.raise_if_failed() is r

    def test_failure_envelope(self):
        r = _failed_result()
        assert not r.success
        assert r.failure.kind == "NoFeasibleMappingError"
        assert r.failure.unplaced_tasks == r.n_tasks > 0
        assert math.isinf(r.makespan)
        assert r.n_blocks == 0 and r.mapping is None and r.k_prime is None
        # the sweep trace survives the failure: every candidate was tried
        # (only k'=1 is a valid candidate on a 1-processor cluster)
        assert [p.status for p in r.sweep] == ["infeasible"]
        with pytest.raises(NoFeasibleMappingError):
            r.raise_if_failed()

    def test_result_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            _success_result().makespan = 0.0

    def test_without_mapping(self):
        r = _success_result()
        stripped = r.without_mapping()
        assert stripped.mapping is None
        assert stripped == r  # mapping is excluded from comparison


class TestJsonRoundTrip:
    def test_success_roundtrips_bit_for_bit(self):
        r = _success_result()
        text = r.to_json()
        back = ScheduleResult.from_json(text)
        assert back.to_json() == text
        assert back == r.without_mapping()
        assert back.mapping is None
        assert back.tags == {"instance": "blast-24", "n_tasks": 24}
        assert back.sweep == r.sweep

    def test_failure_roundtrips_bit_for_bit(self):
        r = _failed_result()
        text = r.to_json()
        # strict RFC 8259 JSON: the inf makespan serializes as null, not
        # the non-standard Infinity literal (which jq/JS reject)
        assert "Infinity" not in text
        back = ScheduleResult.from_json(text)
        assert back.to_json() == text
        assert back == r
        assert back.failure == r.failure
        assert math.isinf(back.makespan)
        with pytest.raises(NoFeasibleMappingError):
            back.raise_if_failed()

    def test_json_is_deterministic_and_sorted(self):
        r = _success_result()
        assert r.to_json() == r.to_json()
        data = json.loads(r.to_json())
        assert list(data) == sorted(data)

    def test_dict_roundtrip_preserves_sweep_points(self):
        r = _success_result()
        back = ScheduleResult.from_dict(r.to_dict())
        assert all(isinstance(p, SweepPoint) for p in back.sweep)
        assert back.sweep == r.sweep

    @pytest.mark.parametrize("bad", [float("nan"), float("-inf")])
    def test_nan_and_neg_inf_makespan_rejected(self, bad):
        # only +inf (a failed run) has a null representation; nan/-inf
        # would silently rehydrate as +inf, so they are rejected instead
        r = dataclasses.replace(_success_result(), makespan=bad)
        with pytest.raises(ValueError):
            r.to_dict()
        with pytest.raises(ValueError):
            r.to_json()


# ----------------------------------------------------------------------
# Property sweeps: randomized envelopes through the JSON round trip.
# Contract: bit-for-bit or explicit rejection (ValueError/TypeError) —
# never a silently mutated field.
# ----------------------------------------------------------------------
_any_float = st.floats(allow_nan=True, allow_infinity=True)
_finite = st.floats(allow_nan=False, allow_infinity=False)
_tag_values = st.one_of(st.none(), st.booleans(), st.integers(-2**31, 2**31),
                        _any_float, st.text(max_size=12))
_tags = st.dictionaries(st.text(min_size=1, max_size=8), _tag_values,
                        max_size=4)
_sweep = st.lists(
    st.builds(SweepPoint,
              k_prime=st.integers(1, 64),
              makespan=st.one_of(st.none(), _any_float),
              status=st.sampled_from(["ok", "infeasible", "error"])),
    max_size=4).map(tuple)
_failure = st.one_of(
    st.none(),
    st.builds(FailureInfo,
              kind=st.sampled_from(["NoFeasibleMappingError",
                                    "CyclicWorkflowError", "ReproError"]),
              message=st.text(max_size=20),
              unplaced_tasks=st.integers(0, 10_000)))

_results = st.builds(
    ScheduleResult,
    algorithm=st.sampled_from(["DagHetMem", "DagHetPart", "Anneal",
                               "Portfolio"]),
    workflow=st.text(max_size=12),
    n_tasks=st.integers(0, 10**6),
    cluster=st.text(max_size=12),
    bandwidth=_any_float,
    makespan=st.one_of(_finite, st.sampled_from(
        [float("inf"), float("-inf"), float("nan")])),
    runtime=_any_float,
    n_blocks=st.integers(0, 10**4),
    k_prime=st.one_of(st.none(), st.integers(1, 64)),
    sweep=_sweep,
    failure=_failure,
    tags=_tags,
    extra=_tags,
)


def _has_non_finite(value):
    """Any non-finite float anywhere in a JSON-ready structure?"""
    if isinstance(value, float):
        return not math.isfinite(value)
    if isinstance(value, dict):
        return any(_has_non_finite(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return any(_has_non_finite(v) for v in value)
    return False


class TestResultRoundTripProperty:
    @settings(max_examples=150, deadline=None)
    @given(result=_results)
    def test_bit_for_bit_or_explicit_rejection(self, result):
        try:
            text = result.to_json()
        except ValueError:
            # rejection is only legitimate for a non-finite float the
            # format cannot represent (+inf makespan excepted: it maps
            # to null and back)
            assert (_has_non_finite(dataclasses.asdict(result))
                    and not (result.makespan == math.inf
                             and not _has_non_finite(dataclasses.asdict(
                                 dataclasses.replace(result, makespan=0.0)))))
            return
        back = ScheduleResult.from_json(text)
        assert back.to_json() == text
        assert back == result.without_mapping()

    @settings(max_examples=60, deadline=None)
    @given(result=_results)
    def test_rejection_never_writes_partial_output(self, result):
        # to_json either returns a complete document or raises before
        # producing anything parseable — re-serializing a successful dump
        # is always possible (no one-way envelopes)
        try:
            text = result.to_json()
        except ValueError:
            return
        assert ScheduleResult.from_json(text).to_json() == text


_part_configs = st.builds(
    DagHetPartConfig,
    k_prime_strategy=st.sampled_from(["auto", "all", "doubling"]),
    k_prime_values=st.one_of(
        st.none(), st.lists(st.integers(1, 36), min_size=1,
                            max_size=4).map(tuple)),
    eps=st.floats(0.01, 0.5),
    enable_swaps=st.booleans(),
)
_anneal_configs = st.builds(
    AnnealConfig,
    seed=st.integers(0, 2**31 - 1),
    iterations=st.integers(0, 5000),
    restarts=st.integers(1, 5),
    move_fraction=st.floats(0.0, 1.0),
    schedule=st.sampled_from(["geometric", "linear"]),
)
_portfolio_configs = st.builds(
    PortfolioConfig,
    algorithms=st.one_of(
        st.none(),
        st.lists(st.sampled_from(["daghetmem", "daghetpart", "heftlist"]),
                 min_size=1, max_size=3, unique=True).map(tuple)),
    parallel=st.integers(0, 4),
)
_algorithm_and_config = st.one_of(
    st.tuples(st.sampled_from(["daghetmem", "heftlist"]), st.none()),
    st.tuples(st.just("daghetpart"), st.one_of(st.none(), _part_configs)),
    st.tuples(st.just("anneal"), st.one_of(st.none(), _anneal_configs)),
    st.tuples(st.just("portfolio"), st.one_of(st.none(), _portfolio_configs)),
)


@st.composite
def _workflows(draw):
    wf = Workflow(draw(st.text(min_size=1, max_size=8)))
    n = draw(st.integers(1, 5))
    weights = st.one_of(_finite.filter(lambda x: x >= 0), _any_float)
    for i in range(n):
        wf.add_task(f"t{i}", draw(weights), abs(draw(weights)))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                wf.add_edge(f"t{i}", f"t{j}", abs(draw(weights)))
    return wf


class TestRequestRoundTripProperty:
    @settings(max_examples=80, deadline=None)
    @given(wf=_workflows(), alg_cfg=_algorithm_and_config, tags=_tags,
           scale=st.booleans(), validate=st.booleans(), want=st.booleans())
    def test_bit_for_bit_or_explicit_rejection(self, wf, alg_cfg, tags,
                                               scale, validate, want):
        algorithm, config = alg_cfg
        request = ScheduleRequest(
            workflow=wf, cluster=default_cluster(), algorithm=algorithm,
            config=config, scale_memory=scale, validate=validate,
            want_mapping=want, tags=tags)
        try:
            text = request.to_json()
        except ValueError:
            assert _has_non_finite(workflow_to_dict(wf)) \
                or _has_non_finite(dict(tags))
            return
        back = ScheduleRequest.from_json(text)
        assert back.to_json() == text
        assert back.config == config
        assert back.algorithm == algorithm
        assert workflow_to_dict(back.workflow) == workflow_to_dict(wf)
        assert back.cluster.to_dict() == request.cluster.to_dict()
        assert dict(back.tags) == dict(tags)
        assert (back.scale_memory, back.validate, back.want_mapping) == \
            (scale, validate, want)

    def test_non_dataclass_config_is_rejected_explicitly(self):
        request = ScheduleRequest(workflow=generate_workflow("blast", 16, seed=0),
                                  cluster=default_cluster(),
                                  algorithm="daghetpart", config=object())
        with pytest.raises(TypeError):
            request.to_dict()

    def test_config_type_mismatch_rejected_on_load(self):
        wf = generate_workflow("blast", 16, seed=0)
        request = ScheduleRequest(workflow=wf, cluster=default_cluster(),
                                  algorithm="daghetpart",
                                  config=DagHetPartConfig())
        data = request.to_dict()
        data["algorithm"] = "anneal"  # carries a DagHetPartConfig payload
        with pytest.raises(ValueError):
            ScheduleRequest.from_dict(data)
