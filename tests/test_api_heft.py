"""Tests of the HEFT-style memory-oblivious list scheduler (heftlist)."""

import pytest

from repro.api import ScheduleRequest, get_algorithm, solve
from repro.generators.families import generate_workflow
from repro.platform.cluster import Cluster
from repro.platform.presets import default_cluster
from repro.platform.processor import Processor
from repro.workflow.graph import Workflow


def _solve(wf, cluster=None, **overrides):
    base = dict(workflow=wf, cluster=cluster or default_cluster(),
                algorithm="heftlist")
    base.update(overrides)
    return solve(ScheduleRequest(**base))


class TestRegistration:
    def test_registered_with_capabilities(self):
        info = get_algorithm("heftlist")
        assert info.display_name == "HeftList"
        assert "memory-oblivious" in info.capabilities
        assert info.config_cls is None

    def test_name_aliases(self):
        assert get_algorithm("HeftList") is get_algorithm("heft-list")


class TestScheduling:
    def test_valid_structure_on_default_cluster(self):
        result = _solve(generate_workflow("blast", 60, seed=3))
        assert result.success
        assert result.makespan > 0
        assert 1 <= result.n_blocks <= 36
        mapping = result.mapping
        # blocks partition the tasks, use distinct processors, and the
        # quotient is acyclic (contiguous cuts of a topological order)
        assert sum(len(a.tasks) for a in mapping.assignments) == \
            mapping.workflow.n_tasks
        names = [a.processor.name for a in mapping.assignments]
        assert len(set(names)) == len(names)
        assert mapping.to_quotient().is_acyclic()

    def test_deterministic(self):
        wf = generate_workflow("genome", 50, seed=9)
        a = _solve(wf, want_mapping=False)
        b = _solve(wf, want_mapping=False)
        strip = lambda r: {k: v for k, v in r.to_dict().items()
                           if k != "runtime"}
        assert strip(a) == strip(b)

    def test_memory_oblivious_never_fails_on_tiny_memory(self):
        """The whole point of the baseline: no memory, no failures."""
        wf = generate_workflow("blast", 40, seed=1)
        tiny = Cluster([Processor(f"p{i}", 1.0 + i, 0.001) for i in range(4)])
        result = _solve(wf, cluster=tiny, want_mapping=False)
        assert result.success  # DagHetMem/DagHetPart both fail here
        assert result.n_blocks <= 4

    def test_empty_workflow(self):
        result = _solve(Workflow("empty"))
        assert result.success
        assert result.makespan == 0.0 and result.n_blocks == 0

    def test_single_task(self):
        wf = Workflow("one")
        wf.add_task("t", work=10.0, memory=1.0)
        result = _solve(wf)
        assert result.success and result.n_blocks == 1

    def test_more_processors_never_needed_than_tasks(self):
        wf = generate_workflow("seismology", 20, seed=2)
        result = _solve(wf)
        assert result.n_blocks <= wf.n_tasks

    def test_makespan_matches_forward_simulation(self):
        from repro.core.mapping import simulate_mapping
        result = _solve(generate_workflow("bwa", 45, seed=4))
        assert result.makespan == pytest.approx(
            simulate_mapping(result.mapping))


class TestInExperimentTables:
    def test_failure_report_covers_heft(self):
        from repro.experiments import figures
        out = figures.failure_report(sizes={"small": (24,)},
                                     families=("blast",))
        algorithms = {r.algorithm for r in out["records"]}
        assert algorithms == {"DagHetMem", "DagHetPart", "HeftList"}

    def test_heft_relative_rows(self):
        from repro.core.heuristic import DagHetPartConfig
        from repro.experiments import figures
        out = figures.heft_relative(
            sizes={"small": (24,)}, families=("blast", "soykb"),
            config=DagHetPartConfig(k_prime_values=(1, 4, 12)))
        assert out["rows"]
        for row in out["rows"]:
            assert row["daghetpart_vs_heft_pct"] > 0
        assert any(r["workflow_type"] == "all" for r in out["rows"])
