"""Unit tests for the Workflow DAG model."""

import pytest

from repro.utils.errors import CyclicWorkflowError
from repro.workflow.graph import Workflow


class TestConstruction:
    def test_add_task_defaults(self):
        wf = Workflow()
        wf.add_task("a")
        assert wf.work("a") == 1.0
        assert wf.memory("a") == 0.0

    def test_add_task_updates_in_place(self):
        wf = Workflow()
        wf.add_task("a", work=1, memory=2)
        wf.add_task("a", work=5, memory=7)
        assert wf.n_tasks == 1
        assert wf.work("a") == 5.0
        assert wf.memory("a") == 7.0

    def test_add_edge_creates_endpoints(self):
        wf = Workflow()
        wf.add_edge("a", "b", 3.0)
        assert "a" in wf and "b" in wf
        assert wf.edge_cost("a", "b") == 3.0

    def test_parallel_edges_sum(self):
        wf = Workflow()
        wf.add_edge("a", "b", 3.0)
        wf.add_edge("a", "b", 2.0)
        assert wf.n_edges == 1
        assert wf.edge_cost("a", "b") == 5.0

    def test_self_loop_rejected(self):
        wf = Workflow()
        with pytest.raises(CyclicWorkflowError):
            wf.add_edge("a", "a", 1.0)

    def test_remove_task_cleans_edges(self, diamond_workflow):
        diamond_workflow.remove_task("x")
        assert "x" not in diamond_workflow
        assert diamond_workflow.n_edges == 2
        assert list(diamond_workflow.children("s")) == ["y"]

    def test_remove_edge(self, diamond_workflow):
        diamond_workflow.remove_edge("s", "x")
        assert not diamond_workflow.has_edge("s", "x")
        assert diamond_workflow.in_degree("x") == 0


class TestWeights:
    def test_task_requirement_formula(self, diamond_workflow):
        # r_x = c(s,x) + c(x,t) + m_x = 2 + 3 + 4
        assert diamond_workflow.task_requirement("x") == pytest.approx(9.0)

    def test_source_requirement_has_no_inputs(self, diamond_workflow):
        # r_s = 0 + (2 + 1) + 1
        assert diamond_workflow.task_requirement("s") == pytest.approx(4.0)

    def test_total_work(self, diamond_workflow):
        assert diamond_workflow.total_work() == pytest.approx(7.0)

    def test_total_edge_cost(self, diamond_workflow):
        assert diamond_workflow.total_edge_cost() == pytest.approx(7.0)

    def test_max_task_requirement(self, diamond_workflow):
        # r_y = 1 + 1 + 6 = 8, r_x = 9, r_s = 4, r_t = 3+1+1 = 5
        assert diamond_workflow.max_task_requirement() == pytest.approx(9.0)

    def test_set_work_missing_task_raises(self):
        wf = Workflow()
        with pytest.raises(KeyError):
            wf.set_work("ghost", 1.0)


class TestStructure:
    def test_sources_and_targets(self, fig1_workflow):
        assert fig1_workflow.sources() == [1]
        assert fig1_workflow.targets() == [9]

    def test_topological_order_is_valid(self, fig1_workflow):
        order = fig1_workflow.topological_order()
        pos = {u: i for i, u in enumerate(order)}
        assert len(order) == 9
        for u, v, _ in fig1_workflow.edges():
            assert pos[u] < pos[v]

    def test_topological_order_deterministic(self, fig1_workflow):
        assert fig1_workflow.topological_order() == fig1_workflow.topological_order()

    def test_cycle_detection(self):
        wf = Workflow()
        wf.add_edge("a", "b")
        wf.add_edge("b", "c")
        wf.add_edge("c", "a")
        assert not wf.is_acyclic()
        cycle = wf.find_cycle()
        assert cycle is not None and set(cycle) == {"a", "b", "c"}
        with pytest.raises(CyclicWorkflowError):
            wf.topological_order()

    def test_acyclic_has_no_cycle(self, fig1_workflow):
        assert fig1_workflow.find_cycle() is None
        assert fig1_workflow.is_acyclic()

    def test_deep_graph_no_recursion_error(self):
        wf = Workflow()
        n = 50_000
        for i in range(n - 1):
            wf.add_edge(i, i + 1)
        assert wf.find_cycle() is None
        assert len(wf.topological_order()) == n

    def test_copy_is_independent(self, diamond_workflow):
        clone = diamond_workflow.copy()
        clone.set_work("x", 99.0)
        clone.remove_edge("s", "y")
        assert diamond_workflow.work("x") == 2.0
        assert diamond_workflow.has_edge("s", "y")


class TestNetworkxInterop:
    def test_roundtrip(self, fig1_workflow):
        g = fig1_workflow.to_networkx()
        back = Workflow.from_networkx(g)
        assert back.n_tasks == fig1_workflow.n_tasks
        assert back.n_edges == fig1_workflow.n_edges
        for u in fig1_workflow.tasks():
            assert back.work(u) == fig1_workflow.work(u)
            assert back.memory(u) == fig1_workflow.memory(u)
        for u, v, c in fig1_workflow.edges():
            assert back.edge_cost(u, v) == c

    def test_networkx_attributes(self, diamond_workflow):
        g = diamond_workflow.to_networkx()
        assert g.nodes["x"]["work"] == 2.0
        assert g.edges["s", "x"]["cost"] == 2.0

    def test_from_networkx_defaults(self):
        import networkx as nx
        g = nx.DiGraph()
        g.add_edge("a", "b")
        wf = Workflow.from_networkx(g)
        assert wf.work("a") == 1.0
        assert wf.edge_cost("a", "b") == 0.0


class TestRequirementCache:
    """task_requirement memoizes per-node totals; mutations invalidate."""

    def _diamond(self):
        wf = Workflow()
        wf.add_edge("s", "x", 2.0)
        wf.add_edge("s", "y", 3.0)
        wf.add_edge("x", "t", 4.0)
        wf.add_edge("y", "t", 5.0)
        return wf

    def test_cached_value_is_exact(self):
        wf = self._diamond()
        wf.set_memory("x", 7.0)
        assert wf.task_requirement("x") == 2.0 + 4.0 + 7.0
        # second call served from the memo, same value
        assert wf.task_requirement("x") == 13.0

    def test_add_edge_invalidates_both_endpoints(self):
        wf = self._diamond()
        before_x = wf.task_requirement("x")
        before_y = wf.task_requirement("y")
        wf.add_edge("x", "y", 10.0)
        assert wf.task_requirement("x") == before_x + 10.0  # out total grew
        assert wf.task_requirement("y") == before_y + 10.0  # in total grew

    def test_parallel_edge_addition_invalidates(self):
        wf = self._diamond()
        assert wf.task_requirement("t") == 4.0 + 5.0
        wf.add_edge("x", "t", 0.5)  # collapses into the existing edge
        assert wf.task_requirement("t") == 4.5 + 5.0

    def test_remove_edge_invalidates(self):
        wf = self._diamond()
        assert wf.task_requirement("s") == 5.0
        wf.remove_edge("s", "y")
        assert wf.task_requirement("s") == 2.0
        assert wf.task_requirement("y") == 5.0  # lost its in-cost

    def test_remove_task_invalidates_neighbours(self):
        wf = self._diamond()
        assert wf.task_requirement("t") == 9.0
        wf.remove_task("x")
        assert wf.task_requirement("t") == 5.0
        assert wf.task_requirement("s") == 3.0

    def test_set_memory_reflected_immediately(self):
        wf = self._diamond()
        base = wf.task_requirement("t")
        wf.set_memory("t", 100.0)
        assert wf.task_requirement("t") == base + 100.0

    def test_long_mutation_sequence_never_stale(self):
        """Interleave reads and mutations; the memo must track exactly."""
        wf = Workflow()
        for i in range(10):
            wf.add_task(i, work=1.0, memory=float(i))
        for i in range(9):
            wf.add_edge(i, i + 1, float(i + 1))
            for u in range(10):
                fresh = (sum(c for _, c in wf.in_edges(u))
                         + sum(c for _, c in wf.out_edges(u))
                         + wf.memory(u))
                assert wf.task_requirement(u) == fresh
        wf.remove_edge(3, 4)
        wf.remove_task(7)
        for u in wf.tasks():
            fresh = (sum(c for _, c in wf.in_edges(u))
                     + sum(c for _, c in wf.out_edges(u))
                     + wf.memory(u))
            assert wf.task_requirement(u) == fresh

    def test_pickle_round_trip_drops_caches_safely(self):
        import pickle
        wf = self._diamond()
        wf.task_requirement("x")  # warm the memo
        clone = pickle.loads(pickle.dumps(wf))
        assert clone.task_requirement("x") == wf.task_requirement("x")
        clone.add_edge("x", "y", 1.0)
        assert clone.task_requirement("x") == wf.task_requirement("x") + 1.0
