"""JobStore: append-only durability, torn-line repair, restart recovery.

The crash tests mirror the ResultCache suite: truncate the log at every
byte offset inside its final line and require the reopened store to (a)
load without error, (b) replay the affected job at most one state older
than it was, and (c) self-repair on the next append.
"""

import dataclasses
import json
import os

import pytest

from repro.service import JobResult, JobSpec, JobStatus, JobStore


def _spec(job_id, **tags):
    return JobSpec(id=job_id, kind="schedule",
                   payload={"algorithm": "daghetpart"},
                   submitted_at=1.5, tags=tags)


def _finish_done(store, job_id, n_results=2):
    status = store.status(job_id)
    store.update(dataclasses.replace(status, state="running"))
    result = JobResult(id=job_id,
                       results=tuple({"i": i} for i in range(n_results)),
                       n_ok=n_results)
    store.finish(dataclasses.replace(status, state="done",
                                     completed=n_results, ok=n_results),
                 result)
    return result


class TestLifecycle:
    def test_submit_update_finish_roundtrip(self, tmp_path):
        with JobStore(str(tmp_path)) as store:
            status = store.submit(_spec("a", origin="test"))
            assert status.state == "queued"
            assert status.total == 1
            result = _finish_done(store, "a")
            assert store.status("a").state == "done"
            assert store.result("a") == result
            assert store.jobs() == ["a"]
            assert "a" in store and len(store) == 1
            assert store.counts() == {"done": 1}

    def test_duplicate_id_rejected(self, tmp_path):
        with JobStore(str(tmp_path)) as store:
            store.submit(_spec("a"))
            with pytest.raises(ValueError, match="already exists"):
                store.submit(_spec("a"))

    def test_update_unknown_job_rejected(self, tmp_path):
        with JobStore(str(tmp_path)) as store:
            with pytest.raises(KeyError):
                store.update(JobStatus(id="ghost", state="running"))

    def test_finish_requires_terminal_state(self, tmp_path):
        with JobStore(str(tmp_path)) as store:
            store.submit(_spec("a"))
            with pytest.raises(ValueError, match="terminal"):
                store.finish(JobStatus(id="a", state="running"), None)

    def test_reopen_replays_everything(self, tmp_path):
        with JobStore(str(tmp_path)) as store:
            store.submit(_spec("a"))
            store.submit(_spec("b"))
            result = _finish_done(store, "a")
        with JobStore(str(tmp_path)) as store:
            assert store.jobs() == ["a", "b"]
            assert store.status("a").state == "done"
            assert store.status("b").state == "queued"
            assert store.result("a") == result
            assert store.result("b") is None
            assert store.spec("b") == _spec("b")

    def test_result_line_precedes_terminal_status(self, tmp_path):
        """A crash between finish()'s two appends must replay as running,
        never as done-without-result — so result goes to disk first."""
        with JobStore(str(tmp_path)) as store:
            store.submit(_spec("a"))
            _finish_done(store, "a")
            path = store.path
        types = [json.loads(line)["type"]
                 for line in open(path, encoding="utf-8")]
        assert types.index("result") < len(types) - 1
        assert types[-1] == "status"  # terminal status is the last line


class TestTornLines:
    def _store_with_history(self, tmp_path):
        with JobStore(str(tmp_path)) as store:
            store.submit(_spec("a"))
            store.submit(_spec("b"))
            _finish_done(store, "a")
            return store.path

    def test_truncation_at_every_offset_in_the_last_line(self, tmp_path):
        path = self._store_with_history(tmp_path)
        data = open(path, "rb").read()
        last_line_start = data[:-1].rfind(b"\n") + 1
        # stop short of len(data) - 1: a line missing only its newline is
        # complete JSON and rightly replays as the state it records
        for cut in range(last_line_start + 1, len(data) - 1):
            open(path, "wb").write(data[:cut])
            with JobStore(str(tmp_path)) as store:
                # the torn line was job a's terminal "done" status; the
                # replay shows the result already on disk but the status
                # one step older — exactly the crash recovery contract
                assert store.jobs() == ["a", "b"]
                assert store.status("a").state == "running"
                assert store.result("a") is not None
                assert store.status("b").state == "queued"

    def test_next_append_repairs_the_torn_tail(self, tmp_path):
        path = self._store_with_history(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-7])  # tear into the final line
        with JobStore(str(tmp_path)) as store:
            store.submit(_spec("c"))
        # the torn fragment stays (newline-terminated, skipped on load);
        # everything appended after it must parse cleanly
        lines = open(path, "rb").read().split(b"\n")
        assert lines[-1] == b""  # file ends with a newline
        parsed = []
        for line in lines[:-1]:
            try:
                parsed.append(json.loads(line))
            except ValueError:
                parsed.append(None)  # exactly one: the repaired fragment
        assert parsed.count(None) == 1
        assert parsed[-1]["type"] == "status"
        assert parsed[-1]["job"]["id"] == "c"
        with JobStore(str(tmp_path)) as store:
            assert store.jobs() == ["a", "b", "c"]

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = self._store_with_history(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"not json at all\n")
            fh.write(b'{"type": "martian", "job": {"id": "x"}}\n')
            fh.write(b'{"type": "status", "no_job_key": 1}\n')
        with JobStore(str(tmp_path)) as store:
            assert store.jobs() == ["a", "b"]
            assert store.status("a").state == "done"


class TestRecovery:
    def test_running_jobs_get_crashed_tombstones(self, tmp_path):
        with JobStore(str(tmp_path)) as store:
            store.submit(_spec("a"))
            store.submit(_spec("b"))
            store.update(dataclasses.replace(store.status("a"),
                                             state="running"))
        with JobStore(str(tmp_path)) as store:
            requeued, crashed = store.recover()
            assert requeued == ["b"]
            assert crashed == ["a"]
            assert store.status("a").state == "crashed"
            assert "terminated" in store.status("a").error
        # the tombstone is durable: a third open sees it without recover()
        with JobStore(str(tmp_path)) as store:
            assert store.status("a").state == "crashed"
            assert store.recover() == (["b"], [])

    def test_spec_without_status_is_requeued(self, tmp_path):
        with JobStore(str(tmp_path)) as store:
            store.submit(_spec("a"))
            path = store.path
        # tear off the trailing queued-status line entirely
        lines = open(path, "rb").read().splitlines(keepends=True)
        open(path, "wb").write(b"".join(lines[:-1]))
        with JobStore(str(tmp_path)) as store:
            assert store.status("a") is None
            requeued, crashed = store.recover()
            assert (requeued, crashed) == (["a"], [])
            assert store.status("a").state == "queued"
            assert store.status("a").total == 1

    def test_terminal_jobs_are_left_alone(self, tmp_path):
        with JobStore(str(tmp_path)) as store:
            store.submit(_spec("a"))
            _finish_done(store, "a")
        with JobStore(str(tmp_path)) as store:
            assert store.recover() == ([], [])
            assert store.status("a").state == "done"
