"""Template renderer tests: substitution, loops, YAML subset, building."""

import pytest

from repro.ingest import (
    build_from_document,
    ingest_text,
    parse_structured,
    render_template,
    workflow_fingerprint,
)
from repro.utils.errors import IngestError


class TestRender:
    def test_variable_substitution(self):
        assert render_template("hello {{who}}", {"who": "world"}) == \
            "hello world\n"

    def test_dotted_and_indexed_lookup(self):
        data = {"s": {"name": "a", "sizes": [10, 20]}}
        assert render_template("{{s.name}}:{{s.sizes.1}}", data) == "a:20\n"

    def test_for_block_expansion(self):
        text = "{% for x in items %}\n- {{x}}\n{% endfor %}"
        assert render_template(text, {"items": [1, 2, 3]}) == \
            "- 1\n- 2\n- 3\n"

    def test_nested_for_blocks(self):
        text = ("{% for a in outer %}\n{% for b in inner %}\n"
                "{{a}}{{b}}\n{% endfor %}\n{% endfor %}")
        out = render_template(text, {"outer": ["x", "y"], "inner": [1, 2]})
        assert out == "x1\nx2\ny1\ny2\n"

    def test_undefined_variable_is_loud(self):
        with pytest.raises(IngestError, match="(?s)ghost.*available"):
            render_template("{{ghost}}", {"real": 1})

    def test_undefined_variable_names_line(self):
        with pytest.raises(IngestError, match="t.tpl:3"):
            render_template("a\nb\n{{nope}}", {}, path="t.tpl")

    def test_unclosed_for_rejected(self):
        with pytest.raises(IngestError, match="endfor"):
            render_template("{% for x in xs %}\nbody", {"xs": []})

    def test_stray_endfor_rejected(self):
        with pytest.raises(IngestError, match="without a matching"):
            render_template("{% endfor %}", {})

    def test_for_over_non_list_rejected(self):
        with pytest.raises(IngestError, match="needs a list"):
            render_template("{% for x in xs %}\n{% endfor %}", {"xs": 3})

    def test_unknown_directive_rejected(self):
        with pytest.raises(IngestError, match="unrecognized"):
            render_template("{% if x %}", {})

    def test_non_mapping_data_rejected(self):
        with pytest.raises(IngestError, match="mapping"):
            render_template("x", [1, 2])

    def test_deterministic(self):
        text = "{% for s in ss %}\n{{s}} {{k}}\n{% endfor %}"
        data = {"ss": ["p", "q"], "k": 7}
        assert render_template(text, data) == render_template(text, data)


class TestYamlSubset:
    def test_mapping_and_nested_list(self):
        doc = parse_structured(
            "name: demo\ntasks:\n  - id: a\n    work: 2\n  - id: b\n")
        assert doc == {"name": "demo",
                       "tasks": [{"id": "a", "work": 2}, {"id": "b"}]}

    def test_inline_lists_and_scalars(self):
        doc = parse_structured(
            "deps: [a, b, 3]\nflag: true\nnothing: null\nratio: 1.5\n")
        assert doc == {"deps": ["a", "b", 3], "flag": True,
                       "nothing": None, "ratio": 1.5}

    def test_quoted_strings_keep_specials(self):
        doc = parse_structured('label: "x: y # z"\n')
        assert doc == {"label": "x: y # z"}

    def test_comments_stripped(self):
        doc = parse_structured("# header\na: 1  # trailing\n")
        assert doc == {"a": 1}

    def test_json_documents_accepted(self):
        assert parse_structured('{"a": [1, 2]}') == {"a": [1, 2]}

    def test_tab_indentation_rejected(self):
        with pytest.raises(IngestError, match="tab"):
            parse_structured("a:\n\tb: 1\n")

    def test_duplicate_key_rejected(self):
        with pytest.raises(IngestError, match="duplicate key"):
            parse_structured("a: 1\na: 2\n")

    def test_unparsable_line_named(self):
        with pytest.raises(IngestError, match="d.yaml:2"):
            parse_structured("a: 1\n!!!\n", path="d.yaml")

    def test_empty_document_rejected(self):
        with pytest.raises(IngestError, match="empty"):
            parse_structured("# only a comment\n")


class TestBuild:
    def test_after_and_before_directives(self):
        doc = {"name": "w", "tasks": [
            {"id": "a", "work": 2},
            {"id": "b", "after": "a", "cost": 3},
            {"id": "c", "before": "b"},
        ]}
        wf = build_from_document(doc)
        assert wf.edge_cost("a", "b") == 3.0
        assert wf.edge_cost("c", "b") == 0.0

    def test_after_list(self):
        doc = {"tasks": [{"id": "a"}, {"id": "b"},
                         {"id": "c", "after": ["a", "b"]}]}
        wf = build_from_document(doc)
        assert wf.in_degree("c") == 2

    def test_unknown_after_target_rejected(self):
        doc = {"tasks": [{"id": "a", "after": "ghost"}]}
        with pytest.raises(IngestError, match="ghost"):
            build_from_document(doc)

    def test_duplicate_id_rejected(self):
        doc = {"tasks": [{"id": "a"}, {"id": "a"}]}
        with pytest.raises(IngestError, match="duplicate"):
            build_from_document(doc)

    def test_unknown_field_rejected(self):
        doc = {"tasks": [{"id": "a", "wrok": 2}]}
        with pytest.raises(IngestError, match="wrok"):
            build_from_document(doc)

    def test_non_numeric_work_rejected(self):
        doc = {"tasks": [{"id": "a", "work": "big"}]}
        with pytest.raises(IngestError, match="number"):
            build_from_document(doc)


class TestEndToEnd:
    TEMPLATE = (
        "name: pipe-{{tag}}\n"
        "tasks:\n"
        "  - id: prep\n"
        "{% for s in samples %}\n"
        "  - id: run_{{s}}\n"
        "    work: 2\n"
        "    after: prep\n"
        "{% endfor %}\n"
        "  - id: merge\n"
        "    after: [{{samples.0}}_sentinel]\n"
    )

    def test_template_ingest_expands_deterministically(self):
        template = self.TEMPLATE.replace(
            "after: [{{samples.0}}_sentinel]", "after: [run_a, run_b]")
        data = {"tag": "t1", "samples": ["a", "b"]}
        wf1 = ingest_text(template, fmt="template", data=data)
        wf2 = ingest_text(template, fmt="template", data=data)
        assert wf1.name == "pipe-t1"
        assert sorted(wf1.tasks()) == ["merge", "prep", "run_a", "run_b"]
        assert workflow_fingerprint(wf1) == workflow_fingerprint(wf2)

    def test_dangling_rendered_reference_is_loud(self):
        data = {"tag": "t1", "samples": ["a"]}
        with pytest.raises(IngestError, match="a_sentinel"):
            ingest_text(self.TEMPLATE, fmt="template", data=data)

    def test_cycle_after_rendering_is_caught(self):
        template = ("tasks:\n  - id: a\n    after: b\n"
                    "  - id: b\n    after: a\n")
        with pytest.raises(IngestError, match="cycle"):
            ingest_text(template, fmt="template")

    def test_data_only_for_templates(self):
        with pytest.raises(IngestError, match="--data"):
            ingest_text("digraph g { a -> b; }", fmt="dot", data={"x": 1})
