"""The incremental makespan engine must be indistinguishable from the
full recompute — bit-for-bit, under every mutation pattern the merge and
swap searches produce."""

import random

import pytest

from repro.core.evaluator import MakespanEvaluator
from repro.core.makespan import bottom_weights, critical_path, makespan
from repro.core.quotient import QuotientGraph
from repro.generators.families import generate_workflow
from repro.partition.api import acyclic_partition
from repro.platform.bandwidth import GroupedBandwidth, LinkBandwidth
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.utils.errors import CyclicWorkflowError
from repro.workflow.graph import Workflow


def _quotient(family="genome", n=60, seed=3, k=8, procs=None):
    wf = generate_workflow(family, n, seed=seed)
    partition = acyclic_partition(wf, k)
    q = QuotientGraph.from_partition(wf, partition, procs)
    return q


def _procs(k, seed=0):
    rng = random.Random(seed)
    return [Processor(f"p{i}", speed=rng.choice([1.0, 2.0, 4.0, 8.0]),
                      memory=1e9) for i in range(k)]


def _clusters(k):
    procs = _procs(k)
    names = [p.name for p in procs]
    yield Cluster(procs, bandwidth=0.5, name="uniform")
    links = {(names[i], names[j]): 0.25 + ((i * 7 + j) % 5)
             for i in range(k) for j in range(i + 1, k) if (i + j) % 3 == 0}
    yield Cluster(procs, bandwidth_model=LinkBandwidth(links, default_beta=0.75),
                  name="links")
    groups = {name: f"site{i % 2}" for i, name in enumerate(names)}
    yield Cluster(procs, bandwidth_model=GroupedBandwidth(groups, 4.0, 0.5),
                  name="grouped")


def _assert_state_matches(ev, q, cluster):
    expected = bottom_weights(q, cluster)
    got = ev.bottom_weights()
    assert got == expected  # bit-for-bit, including the key sets
    if expected:
        assert ev.makespan() == max(expected.values())
        assert ev.critical_path() == critical_path(q, cluster)


class TestDeltaEquivalence:
    @pytest.mark.parametrize("cluster", list(_clusters(8)),
                             ids=lambda c: c.name)
    def test_random_processor_churn(self, cluster):
        q = _quotient(k=8)
        procs = cluster.processors
        rng = random.Random(42)
        ids = q.node_ids()
        for bid in ids:
            q.blocks[bid].proc = rng.choice(procs)
        ev = MakespanEvaluator(q, cluster)
        _assert_state_matches(ev, q, cluster)
        for step in range(200):
            bid = rng.choice(ids)
            q.set_proc(bid, rng.choice(procs + [None]))
            if step % 7 == 0:  # query sometimes after a batch, sometimes each op
                _assert_state_matches(ev, q, cluster)
        _assert_state_matches(ev, q, cluster)
        assert ev.full_recomputes == 1  # everything after init was a delta
        assert ev.delta_syncs > 0

    @pytest.mark.parametrize("cluster", list(_clusters(8)),
                             ids=lambda c: c.name)
    def test_random_swaps(self, cluster):
        q = _quotient(k=8, procs=cluster.processors)
        ev = MakespanEvaluator(q, cluster)
        rng = random.Random(7)
        ids = q.node_ids()
        for _ in range(100):
            a, b = rng.sample(ids, 2)
            before = bottom_weights(q, cluster)
            mu = ev.eval_swap(a, b)
            # tentative evaluation must leave the graph untouched
            assert bottom_weights(q, cluster) == before
            ev.apply_swap(a, b)
            _assert_state_matches(ev, q, cluster)
            assert mu == ev.makespan()
            ev.apply_swap(a, b)  # swap back
        assert ev.full_recomputes == 1

    @pytest.mark.parametrize("cluster", list(_clusters(8)),
                             ids=lambda c: c.name)
    def test_merge_unmerge_storms(self, cluster):
        """The Step-3 pattern: tentative merges, proc probes, rollbacks."""
        q = _quotient(k=8, procs=cluster.processors)
        ev = MakespanEvaluator(q, cluster)
        rng = random.Random(11)
        procs = cluster.processors
        for _ in range(60):
            ids = q.node_ids()
            if len(ids) > 2 and rng.random() < 0.7:
                nu = rng.choice(ids)
                nbrs = q.neighbors(nu)
                if not nbrs:
                    continue
                partner = rng.choice(nbrs)
                merged, token = q.merge(nu, partner)
                if q.find_cycle() is not None:
                    q.unmerge(token)
                    _assert_state_matches(ev, q, cluster)
                    continue
                q.set_proc(merged, rng.choice(procs))
                _assert_state_matches(ev, q, cluster)
                if rng.random() < 0.5:  # rollback half the time
                    q.set_proc(merged, None)
                    q.unmerge(token)
                    _assert_state_matches(ev, q, cluster)
            else:
                bid = rng.choice(ids)
                q.set_proc(bid, rng.choice(procs + [None]))
                _assert_state_matches(ev, q, cluster)
        assert ev.full_recomputes == 1

    def test_eval_move_is_tentative_and_exact(self):
        cluster = next(_clusters(6))
        q = _quotient(k=6, procs=cluster.processors[:6])
        ev = MakespanEvaluator(q, cluster)
        bid = q.node_ids()[0]
        target = cluster.processors[-1]
        old = q.blocks[bid].proc
        mu = ev.eval_move(bid, target)
        assert q.blocks[bid].proc is old
        q.set_proc(bid, target)
        assert makespan(q, cluster) == mu
        assert ev.makespan() == mu


class TestEvaluatorLifecycle:
    def test_oplog_overflow_forces_one_rebuild(self):
        cluster = next(_clusters(4))
        q = _quotient(n=40, k=4, procs=cluster.processors[:4])
        ev = MakespanEvaluator(q, cluster)
        bid = q.node_ids()[0]
        for i in range(QuotientGraph.OPLOG_CAP + 10):
            q.set_proc(bid, cluster.processors[i % 4])
        _assert_state_matches(ev, q, cluster)
        assert ev.full_recomputes == 2  # init + overflow recovery

    def test_invalidate_after_untracked_mutation(self):
        cluster = next(_clusters(4))
        q = _quotient(n=40, k=4, procs=cluster.processors[:4])
        ev = MakespanEvaluator(q, cluster)
        bid = q.node_ids()[0]
        q.blocks[bid].proc = cluster.processors[3]  # bypasses the op log
        ev.invalidate()
        _assert_state_matches(ev, q, cluster)

    def test_cyclic_quotient_raises_like_module_function(self, fig1_workflow):
        partition = [{1, 2, 3}, {4, 9}, {5}, {6, 7, 8}]
        q = QuotientGraph.from_partition(fig1_workflow, partition)
        cluster = Cluster([Processor("p", 1, 1)], name="c1")
        with pytest.raises(CyclicWorkflowError):
            MakespanEvaluator(q, cluster)

    def test_cycle_created_after_attach_raises_on_query(self):
        wf = Workflow("diamond")
        for u in "abcd":
            wf.add_task(u, work=1.0, memory=1.0)
        for u, v in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]:
            wf.add_edge(u, v, 1.0)
        q = QuotientGraph.from_partition(wf, [{"a"}, {"b"}, {"c"}, {"d"}])
        cluster = Cluster([Processor("p", 1, 1e9)])
        ev = MakespanEvaluator(q, cluster)
        # merging source and sink closes a cycle through b and c
        q.merge(q.block_of("a"), q.block_of("d"))
        with pytest.raises(CyclicWorkflowError):
            ev.makespan()
        # after undoing the damage the evaluator recovers via rebuild
        # (the unmerge is gone from the log by then: drain + invalidate)

    def test_empty_quotient(self):
        q = QuotientGraph(Workflow("empty"))
        cluster = Cluster([Processor("p", 1, 1)])
        ev = MakespanEvaluator(q, cluster)
        assert ev.makespan() == 0.0
        assert ev.critical_path() == []

    def test_default_speed_matches_step3_estimates(self):
        cluster = next(_clusters(4))
        q = _quotient(n=40, k=4)  # all blocks unassigned
        ev = MakespanEvaluator(q, cluster, default_speed=2.0)
        assert ev.makespan() == makespan(q, cluster, default_speed=2.0)


class TestPipelineEquivalence:
    """dag_het_part with the evaluator == dag_het_part without, exactly."""

    @pytest.mark.parametrize("family", ["blast", "genome", "soykb"])
    def test_full_pipeline_identical(self, family):
        from repro.core.heuristic import DagHetPartConfig, dag_het_part
        from repro.experiments.instances import scaled_cluster_for
        from repro.platform.presets import default_cluster
        wf = generate_workflow(family, 80, seed=5)
        cluster = scaled_cluster_for(wf, default_cluster())
        on = dag_het_part(wf, cluster, DagHetPartConfig(
            k_prime_strategy="doubling", use_evaluator=True))
        off = dag_het_part(wf, cluster, DagHetPartConfig(
            k_prime_strategy="doubling", use_evaluator=False))
        assert on.makespan() == off.makespan()
        assert on.n_blocks == off.n_blocks
