"""Tests of the portfolio meta-scheduler: argmin contract, filtering, tags."""

import math

import pytest

from repro.api import (
    PortfolioConfig,
    ScheduleRequest,
    get_algorithm,
    register_algorithm,
    solve,
    unregister_algorithm,
)
from repro.api.schedulers import PortfolioScheduler
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.platform.cluster import Cluster
from repro.platform.presets import default_cluster
from repro.platform.processor import Processor


def _solve(wf, cluster, algorithm, config=None):
    return solve(ScheduleRequest(workflow=wf, cluster=cluster,
                                 algorithm=algorithm, config=config))


class TestArgminContract:
    def test_portfolio_is_argmin_of_members(self):
        members = ("daghetmem", "daghetpart")
        for family, seed in (("blast", 1), ("genome", 2), ("soykb", 3)):
            wf = generate_workflow(family, 60, seed=seed)
            cluster = scaled_cluster_for(wf, default_cluster())
            individual = {m: _solve(wf, cluster, m) for m in members}
            port = _solve(wf, cluster, "portfolio",
                          PortfolioConfig(algorithms=members))
            best = min(r.makespan for r in individual.values())
            assert port.makespan == best
            winner = port.extra["portfolio_winner"]
            assert individual[winner.lower()].makespan == best

    def test_ties_go_to_the_first_member(self):
        # both member orders must report the same (tied) makespan but
        # crown the member listed first
        wf = generate_workflow("blast", 40, seed=5)
        cluster = scaled_cluster_for(wf, default_cluster())
        a = _solve(wf, cluster, "portfolio",
                   PortfolioConfig(algorithms=("daghetpart", "anneal")))
        b = _solve(wf, cluster, "portfolio",
                   PortfolioConfig(algorithms=("anneal", "daghetpart")))
        assert a.makespan == b.makespan
        if a.extra["portfolio_winner"] != b.extra["portfolio_winner"]:
            # a genuine tie: each order crowned its first member
            assert a.extra["portfolio_winner"] == "DagHetPart"
            assert b.extra["portfolio_winner"] == "Anneal"

    def test_winner_and_members_ride_on_extra(self):
        wf = generate_workflow("genome", 40, seed=1)
        cluster = scaled_cluster_for(wf, default_cluster())
        result = _solve(wf, cluster, "portfolio")
        assert result.success
        assert result.extra["portfolio_winner"] in \
            ("DagHetMem", "DagHetPart", "Anneal")
        assert "daghetpart" in result.extra["portfolio_members"]
        # the outcome metadata survives the JSON round trip, and the
        # caller's tags stay clean of it
        assert "portfolio_winner" not in result.tags
        back = type(result).from_json(result.to_json())
        assert back.extra["portfolio_winner"] == result.extra["portfolio_winner"]


class TestMembership:
    def test_default_filter_excludes_meta_and_memory_oblivious(self):
        members = PortfolioScheduler().members(PortfolioConfig())
        assert "portfolio" not in members
        assert "heftlist" not in members  # memory-oblivious
        assert {"daghetmem", "daghetpart", "anneal"} <= set(members)

    def test_capability_filter_is_configurable(self):
        members = PortfolioScheduler().members(
            PortfolioConfig(exclude_capabilities=("meta", "memory-oblivious",
                                                  "refinement")))
        assert "anneal" not in members
        assert "daghetpart" in members

    def test_plugin_algorithms_join_the_default_pool(self):
        @register_algorithm("teststub", summary="stub")
        def stub(workflow, cluster, config=None):
            from repro.core.baseline import dag_het_mem
            return dag_het_mem(workflow, cluster)

        try:
            members = PortfolioScheduler().members(PortfolioConfig())
            assert "teststub" in members
        finally:
            unregister_algorithm("teststub")

    def test_unknown_member_raises(self):
        wf = generate_workflow("blast", 24, seed=0)
        with pytest.raises(ValueError):
            _solve(wf, default_cluster(), "portfolio",
                   PortfolioConfig(algorithms=("nosuch",)))

    def test_nested_meta_rejected(self):
        wf = generate_workflow("blast", 24, seed=0)
        with pytest.raises(ValueError):
            _solve(wf, default_cluster(), "portfolio",
                   PortfolioConfig(algorithms=("portfolio",)))

    def test_empty_member_list_rejected(self):
        with pytest.raises(ValueError):
            PortfolioConfig(algorithms=())

    def test_wrong_config_type_raises(self):
        wf = generate_workflow("blast", 24, seed=0)
        from repro.core.heuristic import DagHetPartConfig
        with pytest.raises(TypeError):
            _solve(wf, default_cluster(), "portfolio", DagHetPartConfig())


class TestFailureSemantics:
    def test_all_members_infeasible_is_a_structured_failure(self):
        wf = generate_workflow("blast", 24, seed=1)
        tiny = Cluster([Processor("p0", 1.0, 0.001)])
        result = _solve(wf, tiny, "portfolio",
                        PortfolioConfig(algorithms=("daghetmem", "daghetpart")))
        assert not result.success
        assert result.failure.kind == "NoFeasibleMappingError"
        assert math.isinf(result.makespan)
        assert result.failure.unplaced_tasks == wf.n_tasks

    def test_one_feasible_member_suffices(self):
        # daghetmem needs k >= number of memory-peaks it packs; on a
        # single roomy processor both members degenerate but still map
        wf = generate_workflow("blast", 24, seed=1)
        cluster = scaled_cluster_for(wf, default_cluster())
        result = _solve(wf, cluster, "portfolio",
                        PortfolioConfig(algorithms=("daghetmem",)))
        assert result.success
        assert result.extra["portfolio_winner"] == "DagHetMem"

    def test_registry_metadata(self):
        info = get_algorithm("portfolio")
        assert "meta" in info.capabilities
        assert info.config_cls is PortfolioConfig


class TestCacheFingerprint:
    """The portfolio's cache key tracks what determines its result."""

    def _fingerprint(self, config):
        from repro.api import request_fingerprint
        wf = generate_workflow("blast", 24, seed=0)
        return request_fingerprint(ScheduleRequest(
            workflow=wf, cluster=default_cluster(), algorithm="portfolio",
            config=config, want_mapping=False))

    def test_parallel_knob_does_not_change_the_fingerprint(self):
        # parallel is execution-only: same computation, same cache line
        assert self._fingerprint(PortfolioConfig(parallel=0)) == \
            self._fingerprint(PortfolioConfig(parallel=4))

    def test_none_config_keys_like_an_explicit_default(self):
        # AlgorithmSpec("portfolio") sends config=None; it must share a
        # cache line with PortfolioConfig() — same computation — and stay
        # registry-sensitive like it
        assert self._fingerprint(None) == self._fingerprint(PortfolioConfig())
        before = self._fingerprint(None)

        @register_algorithm("fpstub2", summary="stub")
        def stub(workflow, cluster, config=None):
            from repro.core.baseline import dag_het_mem
            return dag_het_mem(workflow, cluster)

        try:
            assert self._fingerprint(None) != before
        finally:
            unregister_algorithm("fpstub2")
        assert self._fingerprint(None) == before

    def test_default_membership_is_registry_sensitive(self):
        # algorithms=None resolves against the live registry, so a new
        # registration must invalidate (miss) old default-portfolio lines
        before = self._fingerprint(PortfolioConfig())

        @register_algorithm("fpstub", summary="stub")
        def stub(workflow, cluster, config=None):
            from repro.core.baseline import dag_het_mem
            return dag_het_mem(workflow, cluster)

        try:
            assert self._fingerprint(PortfolioConfig()) != before
            # an explicit member list pins the computation regardless
            pinned = PortfolioConfig(algorithms=("daghetmem", "daghetpart"))
            fp = self._fingerprint(pinned)
        finally:
            unregister_algorithm("fpstub")
        assert self._fingerprint(
            PortfolioConfig(algorithms=("daghetmem", "daghetpart"))) == fp
