"""Serialization tests: JSON round-trips and DOT import/export."""

import pytest

from repro.utils.errors import IngestError
from repro.workflow.graph import Workflow
from repro.workflow.io import (
    load_workflow_json,
    save_workflow_json,
    workflow_from_dict,
    workflow_from_dot,
    workflow_to_dict,
    workflow_to_dot,
)


class TestJson:
    def test_dict_roundtrip(self, fig1_workflow):
        back = workflow_from_dict(workflow_to_dict(fig1_workflow))
        assert back.n_tasks == fig1_workflow.n_tasks
        assert back.n_edges == fig1_workflow.n_edges
        for u, v, c in fig1_workflow.edges():
            assert back.edge_cost(u, v) == c

    def test_file_roundtrip(self, tmp_path, diamond_workflow):
        path = tmp_path / "wf.json"
        save_workflow_json(diamond_workflow, path)
        back = load_workflow_json(path)
        assert back.name == "diamond"
        assert back.work("y") == 3.0
        assert back.memory("y") == 6.0

    def test_dict_defaults(self):
        wf = workflow_from_dict({"tasks": [{"id": "a"}], "edges": []})
        assert wf.work("a") == 1.0
        assert wf.memory("a") == 0.0

    def test_duplicate_task_id_fails_loudly(self):
        with pytest.raises(IngestError, match="duplicate task id 'a'"):
            workflow_from_dict({"tasks": [{"id": "a"}, {"id": "a"}],
                                "edges": []})

    def test_edge_to_unknown_task_fails_loudly(self):
        with pytest.raises(IngestError, match="'ghost'"):
            workflow_from_dict(
                {"tasks": [{"id": "a"}],
                 "edges": [{"source": "a", "target": "ghost"}]})

    def test_load_names_offending_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"tasks": [{"id": 1}, {"id": 1}], "edges": []}')
        with pytest.raises(IngestError, match="bad.json"):
            load_workflow_json(path)


class TestDot:
    def test_roundtrip(self, diamond_workflow):
        text = workflow_to_dot(diamond_workflow)
        back = workflow_from_dot(text, name="diamond")
        assert back.n_tasks == 4
        assert back.n_edges == 4
        assert back.work("y") == 3.0
        assert back.edge_cost("s", "x") == 2.0

    def test_parses_unweighted_nextflow_style(self):
        text = """
        digraph "pipeline" {
          fastqc -> trim;
          trim -> align;
          align -> multiqc;
          fastqc -> multiqc;
        }
        """
        wf = workflow_from_dot(text)
        assert wf.n_tasks == 4
        assert wf.n_edges == 4
        # unweighted elements get the missing-historical-data defaults
        assert wf.work("trim") == 1.0
        assert wf.edge_cost("trim", "align") == 0.0

    def test_ignores_comments_and_styling(self):
        text = """
        digraph g {
          // a comment
          node [shape=box];
          "a" [work=5, memory=2];
          "a" -> "b" [cost=7];
        }
        """
        wf = workflow_from_dot(text)
        assert wf.work("a") == 5.0
        assert wf.memory("a") == 2.0
        assert wf.edge_cost("a", "b") == 7.0

    def test_weight_attribute_alias(self):
        wf = workflow_from_dot('digraph g {\n a -> b [weight=3];\n}')
        assert wf.edge_cost("a", "b") == 3.0

    def test_quoted_identifiers_with_spaces(self):
        wf = workflow_from_dot('digraph g { "fastqc raw" -> "trim"; }')
        assert "fastqc raw" in wf

    def test_unparsable_line_raises_not_silent_empty(self):
        with pytest.raises(IngestError):
            workflow_from_dot("digraph g {\n a -> b;\n !garbage!;\n}")

    def test_shim_keeps_legacy_default_name(self):
        wf = workflow_from_dot('digraph "internal name" { a -> b; }')
        assert wf.name == "workflow"
