"""Serialization tests: JSON round-trips and DOT import/export."""

import pytest

from repro.workflow.graph import Workflow
from repro.workflow.io import (
    load_workflow_json,
    save_workflow_json,
    workflow_from_dict,
    workflow_from_dot,
    workflow_to_dict,
    workflow_to_dot,
)


class TestJson:
    def test_dict_roundtrip(self, fig1_workflow):
        back = workflow_from_dict(workflow_to_dict(fig1_workflow))
        assert back.n_tasks == fig1_workflow.n_tasks
        assert back.n_edges == fig1_workflow.n_edges
        for u, v, c in fig1_workflow.edges():
            assert back.edge_cost(u, v) == c

    def test_file_roundtrip(self, tmp_path, diamond_workflow):
        path = tmp_path / "wf.json"
        save_workflow_json(diamond_workflow, path)
        back = load_workflow_json(path)
        assert back.name == "diamond"
        assert back.work("y") == 3.0
        assert back.memory("y") == 6.0

    def test_dict_defaults(self):
        wf = workflow_from_dict({"tasks": [{"id": "a"}], "edges": []})
        assert wf.work("a") == 1.0
        assert wf.memory("a") == 0.0


class TestDot:
    def test_roundtrip(self, diamond_workflow):
        text = workflow_to_dot(diamond_workflow)
        back = workflow_from_dot(text, name="diamond")
        assert back.n_tasks == 4
        assert back.n_edges == 4
        assert back.work("y") == 3.0
        assert back.edge_cost("s", "x") == 2.0

    def test_parses_unweighted_nextflow_style(self):
        text = """
        digraph "pipeline" {
          fastqc -> trim;
          trim -> align;
          align -> multiqc;
          fastqc -> multiqc;
        }
        """
        wf = workflow_from_dot(text)
        assert wf.n_tasks == 4
        assert wf.n_edges == 4
        # unweighted elements get the missing-historical-data defaults
        assert wf.work("trim") == 1.0
        assert wf.edge_cost("trim", "align") == 0.0

    def test_ignores_comments_and_styling(self):
        text = """
        digraph g {
          // a comment
          node [shape=box];
          "a" [work=5, memory=2];
          "a" -> "b" [cost=7];
        }
        """
        wf = workflow_from_dot(text)
        assert wf.work("a") == 5.0
        assert wf.memory("a") == 2.0
        assert wf.edge_cost("a", "b") == 7.0

    def test_weight_attribute_alias(self):
        wf = workflow_from_dot('digraph g {\n a -> b [weight=3];\n}')
        assert wf.edge_cost("a", "b") == 3.0
