"""Scenario-level simulator plumbing: fingerprints, caching, diff, CLI.

The contract under test: ``simulate_request`` returns an ordinary
:class:`ScheduleResult` (realized makespan + flat ``sim_*`` extras +
the resolved event log), caches under :func:`dynamic_fingerprint` (so a
re-run is a pure hit that still carries the log), and the scenario
differ treats the simulator metrics as part of the outcome — flagging
degradation/migration deltas while ignoring wall-clock latencies.
"""

import json

import pytest

from repro.api.cache import ResultCache, request_fingerprint
from repro.api.diff import diff_results, format_diff
from repro.api.envelopes import ScheduleRequest
from repro.api.scenario import ScenarioSpec, load_scenario
from repro.cli import main
from repro.generators.families import generate_workflow
from repro.platform.presets import cluster_by_name
from repro.sim.events import DynamicsSpec, ProcessorChurn, TraceArrivals
from repro.sim.runner import (
    dynamic_fingerprint,
    run_dynamic_scenario,
    simulate_request,
)

SPEC_PATH = "examples/specs/dynamics_smoke.json"


@pytest.fixture(scope="module")
def request_():
    return ScheduleRequest(
        workflow=generate_workflow("blast", 30, seed=7),
        cluster=cluster_by_name("small"),
        algorithm="cpack", scale_memory=True, want_mapping=False)


@pytest.fixture(scope="module")
def dynamics():
    return DynamicsSpec(models=(TraceArrivals(times=(0.2,), family="blast",
                                              n_tasks=10),
                                ProcessorChurn(fail_times=(0.45,))),
                        seed=11, policy="warmstart")


class TestFingerprint:
    def test_layers_on_the_static_fingerprint(self, request_, dynamics):
        fp = dynamic_fingerprint(request_, dynamics)
        assert fp != request_fingerprint(request_)
        assert fp == dynamic_fingerprint(request_, dynamics)

    def test_distinct_per_policy_and_seed(self, request_, dynamics):
        import dataclasses
        fps = {dynamic_fingerprint(request_, d) for d in (
            dynamics,
            dataclasses.replace(dynamics, policy="resolve"),
            dataclasses.replace(dynamics, policy="static"),
            dataclasses.replace(dynamics, seed=99))}
        assert len(fps) == 4


class TestSimulateRequest:
    def test_envelope_shape(self, request_, dynamics):
        result = simulate_request(request_, dynamics)
        assert result.failure is None
        assert result.mapping is None        # want_mapping=False drops it
        assert result.extra["sim_policy"] == "warmstart"
        assert result.makespan == result.extra["sim_realized_makespan"]
        assert result.makespan >= result.extra["sim_plan_makespan"]
        log = result.extra["sim_event_log"]
        assert len(log) == result.extra["sim_events"] == 2
        # the log is JSON-serializable as-is (the determinism artifact)
        json.dumps(log)

    def test_policy_override(self, request_, dynamics):
        result = simulate_request(request_, dynamics, policy="static")
        assert result.extra["sim_policy"] == "static"

    def test_cache_round_trip(self, request_, dynamics, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        first = simulate_request(request_, dynamics, cache=cache)
        again = simulate_request(request_, dynamics, cache=cache)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
        assert again.makespan == first.makespan
        # the hit still carries the metrics and the event log
        assert again.extra["sim_event_log"] == first.extra["sim_event_log"]

    def test_policies_cache_separately(self, request_, dynamics, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        a = simulate_request(request_, dynamics, cache=cache,
                             policy="warmstart")
        b = simulate_request(request_, dynamics, cache=cache,
                             policy="resolve")
        assert cache.stats()["entries"] == 2
        assert a.extra["sim_policy"] != b.extra["sim_policy"]


class TestRunDynamicScenario:
    def test_streams_the_smoke_spec(self):
        spec = load_scenario(SPEC_PATH)
        seen = []
        results = list(run_dynamic_scenario(
            spec, progress=lambda i, req, res: seen.append(i)))
        assert len(results) == spec.size() == len(seen)
        for result in results:
            assert result.failure is None
            assert result.extra["sim_policy"] == "warmstart"
            assert result.extra["sim_full_passes"] == 0

    def test_rejects_static_spec(self):
        spec = load_scenario(SPEC_PATH)
        import dataclasses
        static = dataclasses.replace(spec, dynamics=None)
        with pytest.raises(ValueError, match="no dynamics block"):
            list(run_dynamic_scenario(static))


def _record(**extra):
    return {"workflow": "blast-30", "n_tasks": 30, "cluster": "small-18",
            "bandwidth": 1.0, "algorithm": "cpack", "tags": {},
            "makespan": 1200.0, "failure": None, "extra": extra}


class TestDiffRobustness:
    BASE = dict(sim_policy="warmstart", sim_task_migrations=4,
                sim_degradation_pct=12.5, sim_react_total_s=0.01)

    def test_identical_runs_are_clean(self):
        diff = diff_results([_record(**self.BASE)], [_record(**self.BASE)])
        assert diff.clean and diff.matched == 1

    def test_latency_keys_ignored(self):
        other = dict(self.BASE, sim_react_total_s=9.99)
        assert diff_results([_record(**self.BASE)],
                            [_record(**other)]).clean

    def test_metric_drift_is_flagged(self):
        other = dict(self.BASE, sim_task_migrations=7,
                     sim_degradation_pct=19.0)
        diff = diff_results([_record(**self.BASE)], [_record(**other)])
        assert not diff.clean
        keys = {key for _, key, _, _ in diff.robustness_deltas}
        assert keys == {"sim_task_migrations", "sim_degradation_pct"}
        assert "robustness deltas" in format_diff(diff)

    def test_float_tolerance(self):
        other = dict(self.BASE, sim_degradation_pct=12.5 * (1 + 1e-12))
        assert diff_results([_record(**self.BASE)],
                            [_record(**other)]).clean


class TestCli:
    def test_simulate_smoke(self, tmp_path, capsys):
        out = tmp_path / "sim.jsonl"
        events = tmp_path / "events.json"
        rc = main(["simulate", SPEC_PATH, "--json", str(out),
                   "--events-json", str(events)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "full passes: 0" in text
        records = [json.loads(line) for line in
                   out.read_text().splitlines() if line.strip()]
        assert len(records) == 1
        assert records[0]["extra"]["sim_policy"] == "warmstart"
        dumped = json.loads(events.read_text())
        assert dumped[0]["events"] == \
            records[0]["extra"]["sim_event_log"]

    def test_simulate_diff_round_trip(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        assert main(["simulate", SPEC_PATH, "--json", str(a)]) == 0
        assert main(["simulate", SPEC_PATH, "--json", str(b)]) == 0
        capsys.readouterr()
        assert main(["scenario", "diff", str(a), str(b)]) == 0
        assert "runs agree" in capsys.readouterr().out

    def test_simulate_rejects_static_spec(self, tmp_path, capsys):
        spec = load_scenario(SPEC_PATH)
        import dataclasses
        static = dataclasses.replace(spec, dynamics=None)
        path = tmp_path / "static.json"
        path.write_text(json.dumps(static.to_dict()))
        assert main(["simulate", str(path)]) == 2
        assert "dynamics" in capsys.readouterr().err.lower()
