"""Tests of the quotient graph: construction, merge/unmerge, cycles."""

import pytest

from repro.core.quotient import QuotientGraph
from repro.platform.processor import Processor
from repro.utils.errors import InvalidPartitionError


class TestConstruction:
    def test_from_partition_basic(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        assert len(q) == 4
        assert sum(len(b.tasks) for b in q.blocks.values()) == 9

    def test_from_partition_with_procs(self, fig1_workflow, fig1_partition):
        procs = [Processor(f"p{i}", 1, 100) for i in range(4)]
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition, procs)
        assert q.assigned_ids() == set(q.blocks)
        assert q.unassigned_ids() == set()

    def test_empty_block_rejected(self, fig1_workflow):
        with pytest.raises(InvalidPartitionError, match="empty"):
            QuotientGraph.from_partition(fig1_workflow, [set(range(1, 10)), set()])

    def test_overlap_rejected(self, fig1_workflow):
        with pytest.raises(InvalidPartitionError, match="overlap"):
            QuotientGraph.from_partition(fig1_workflow, [{1, 2}, {2, 3}, set(range(4, 10)) | {3}])

    def test_missing_tasks_rejected(self, fig1_workflow):
        with pytest.raises(InvalidPartitionError, match="not covered"):
            QuotientGraph.from_partition(fig1_workflow, [{1, 2, 3}])

    def test_block_of(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        b1 = q.block_of(1)
        assert q.block_of(4) == b1
        assert q.block_of(5) != b1

    def test_internal_edges_excluded(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        v1 = q.block_of(1)
        # edges 1->2, 2->4, etc. are internal; no self-loop
        assert v1 not in q.succ[v1]


class TestMergeUnmerge:
    def test_merge_combines_tasks_and_work(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        v1, v2 = q.block_of(1), q.block_of(5)
        merged, _ = q.merge(v1, v2)
        assert q.blocks[merged].tasks == {1, 2, 3, 4, 5}
        assert q.blocks[merged].work == 5.0
        assert len(q) == 3

    def test_merge_sums_edges_to_common_neighbor(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        v1, v2, v3 = q.block_of(1), q.block_of(5), q.block_of(6)
        merged, _ = q.merge(v1, v2)
        # V1->V3 cost 2 plus V2->V3 cost 1
        assert q.succ[merged][v3] == pytest.approx(3.0)

    def test_unmerge_restores_exactly(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        before_blocks = {bid: set(b.tasks) for bid, b in q.blocks.items()}
        before_succ = {bid: dict(nbrs) for bid, nbrs in q.succ.items()}
        v1, v2 = q.block_of(1), q.block_of(5)
        _, token = q.merge(v1, v2)
        q.unmerge(token)
        assert {bid: set(b.tasks) for bid, b in q.blocks.items()} == before_blocks
        assert {bid: dict(nbrs) for bid, nbrs in q.succ.items()} == before_succ
        # pred must mirror succ
        for bid, nbrs in q.succ.items():
            for x, c in nbrs.items():
                assert q.pred[x][bid] == c

    def test_nested_merge_unmerge(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        snapshot = {bid: set(b.tasks) for bid, b in q.blocks.items()}
        v1, v2, v3 = q.block_of(1), q.block_of(5), q.block_of(6)
        m1, t1 = q.merge(v1, v2)
        m2, t2 = q.merge(m1, v3)
        q.unmerge(t2)
        q.unmerge(t1)
        assert {bid: set(b.tasks) for bid, b in q.blocks.items()} == snapshot

    def test_merge_task_block_mapping_updates(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        v1, v2 = q.block_of(1), q.block_of(5)
        merged, token = q.merge(v1, v2)
        assert q.block_of(5) == merged
        q.unmerge(token)
        assert q.block_of(5) == v2

    def test_merge_self_rejected(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        with pytest.raises(ValueError):
            q.merge(q.block_of(1), q.block_of(1))


class TestCycles:
    def test_acyclic_partition_detected(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        assert q.is_acyclic()
        assert q.find_cycle() is None

    def test_merge_creating_cycle_detected(self, fig1_workflow):
        """The paper's example: blocks {4,9} create a 2-cycle with {6,7,8}."""
        q = QuotientGraph.from_partition(
            fig1_workflow, [{1, 2, 3}, {4, 9}, {5}, {6, 7, 8}])
        assert not q.is_acyclic()
        cycle = q.find_cycle()
        assert cycle is not None and len(cycle) == 2

    def test_topological_order_none_when_cyclic(self, fig1_workflow):
        q = QuotientGraph.from_partition(
            fig1_workflow, [{1, 2, 3}, {4, 9}, {5}, {6, 7, 8}])
        assert q.topological_order() is None

    def test_cycle_repair_by_third_merge(self, fig1_workflow):
        """Merging the third vertex resolves a 2-cycle (Fig. 2)."""
        q = QuotientGraph.from_partition(
            fig1_workflow, [{1, 2, 3}, {4, 9}, {5}, {6, 7, 8}])
        b49 = q.block_of(4)
        b678 = q.block_of(6)
        merged, _ = q.merge(b49, b678)
        assert q.is_acyclic()


class TestHelpers:
    def test_neighbors(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        v2 = q.block_of(5)
        nbrs = set(q.neighbors(v2))
        assert nbrs == {q.block_of(1), q.block_of(6), q.block_of(9)}

    def test_used_processors(self, fig1_workflow, fig1_partition):
        procs = [Processor(f"p{i}", 1, 100) for i in range(4)]
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition, procs)
        assert q.used_processors() == {"p0", "p1", "p2", "p3"}

    def test_partition_blocks_roundtrip(self, fig1_workflow, fig1_partition):
        q = QuotientGraph.from_partition(fig1_workflow, fig1_partition)
        blocks = q.partition_blocks()
        assert sorted(map(sorted, blocks)) == sorted(map(sorted, fig1_partition))
