"""Tests of solve()/solve_batch(): the one code path, serial or parallel."""

import pytest

from repro.api import ScheduleRequest, iter_solve_batch, solve, solve_batch
from repro.core.heuristic import DagHetPartConfig
from repro.experiments.instances import synthetic_instances
from repro.platform.presets import default_cluster

FAST_CFG = DagHetPartConfig(k_prime_values=(1, 4, 12))


def _requests(n_instances=2):
    instances = synthetic_instances(sizes={"small": (24, 32)[:n_instances]},
                                    families=("blast", "bwa"))
    return [
        ScheduleRequest(workflow=inst.workflow, cluster=default_cluster(),
                        algorithm=algorithm, config=FAST_CFG,
                        scale_memory=True, want_mapping=False,
                        tags={"instance": inst.name})
        for inst in instances
        for algorithm in ("DagHetMem", "DagHetPart")
    ]


class TestSolve:
    def test_unknown_algorithm_raises_eagerly(self):
        req = _requests()[0]
        import dataclasses
        with pytest.raises(ValueError, match="unknown algorithm"):
            solve(dataclasses.replace(req, algorithm="nope"))

    def test_wrong_config_type_raises(self):
        req = _requests()[1]
        import dataclasses
        with pytest.raises(TypeError, match="DagHetPartConfig"):
            solve(dataclasses.replace(req, algorithm="daghetpart",
                                      config=object()))

    def test_want_mapping_false_drops_mapping_keeps_scalars(self):
        result = solve(_requests()[3])
        assert result.success
        assert result.mapping is None
        assert result.makespan > 0 and result.n_blocks >= 1

    def test_scale_memory_reflected_in_result_cluster(self):
        # blast tasks outgrow the unscaled cluster memory at this size
        req = _requests()[1]
        result = solve(req)
        assert result.success
        assert result.cluster  # name of the cluster actually used


class TestSolveBatch:
    def test_results_in_request_order(self):
        requests = _requests()
        results = solve_batch(requests)
        assert [r.tags["instance"] for r in results] == \
            [req.tags["instance"] for req in requests]
        assert [r.algorithm for r in results] == \
            ["DagHetMem", "DagHetPart"] * (len(requests) // 2)

    def test_parallel_matches_serial(self):
        requests = _requests()
        serial = solve_batch(requests)
        parallel = solve_batch(requests, parallel=2)
        # bit-for-bit identical apart from the measured runtime
        strip = lambda r: {k: v for k, v in r.to_dict().items()
                           if k != "runtime"}
        assert [strip(r) for r in parallel] == [strip(r) for r in serial]

    def test_progress_hook_called_per_request(self):
        requests = _requests()
        seen = []
        solve_batch(requests, progress=lambda i, req, res: seen.append(i))
        assert sorted(seen) == list(range(len(requests)))

    def test_parallel_progress_hook(self):
        requests = _requests()
        seen = []
        results = solve_batch(requests, parallel=2,
                              progress=lambda i, req, res: seen.append(i))
        assert sorted(seen) == list(range(len(requests)))
        assert len(results) == len(requests)

    def test_empty_batch(self):
        assert solve_batch([]) == []

    def test_single_request_stays_serial(self):
        results = solve_batch(_requests()[:1], parallel=8)
        assert len(results) == 1 and results[0].success


class TestProgressOrdering:
    """The hook fires in request order with matching (index, request, result),
    serial and parallel alike."""

    def _run(self, parallel):
        requests = _requests()
        seen = []
        results = solve_batch(requests, parallel=parallel,
                              progress=lambda i, req, res:
                              seen.append((i, req, res)))
        return requests, results, seen

    @pytest.mark.parametrize("parallel", [None, 3])
    def test_hooks_fire_in_request_order(self, parallel):
        requests, results, seen = self._run(parallel)
        assert [i for i, _, _ in seen] == list(range(len(requests)))

    @pytest.mark.parametrize("parallel", [None, 3])
    def test_hook_triples_are_consistent(self, parallel):
        requests, results, seen = self._run(parallel)
        for i, req, res in seen:
            assert req is requests[i]
            assert res is results[i]
            assert res.workflow == req.workflow.name


class TestIterSolveBatch:
    def test_streams_in_request_order(self):
        requests = _requests()
        results = list(iter_solve_batch(requests))
        assert [r.tags["instance"] for r in results] == \
            [req.tags["instance"] for req in requests]

    def test_accepts_a_lazy_generator(self):
        requests = _requests()
        consumed = []

        def generator():
            for req in requests:
                consumed.append(req)
                yield req

        it = iter_solve_batch(generator())
        first = next(it)
        # serial path pulls one request at a time
        assert len(consumed) == 1 and first.success
        rest = list(it)
        assert len(rest) == len(requests) - 1

    def test_parallel_stream_matches_serial(self):
        requests = _requests()
        strip = lambda r: {k: v for k, v in r.to_dict().items()
                           if k != "runtime"}
        serial = [strip(r) for r in iter_solve_batch(iter(requests))]
        parallel = [strip(r) for r in
                    iter_solve_batch(iter(requests), parallel=2, window=2)]
        assert parallel == serial


class TestResolveParallelEnv:
    def test_unparsable_env_value_warns_and_runs_serial(self, monkeypatch):
        from repro.api import resolve_parallel
        monkeypatch.setenv("REPRO_PARALLEL", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_PARALLEL='lots'"):
            assert resolve_parallel(None) == 0

    def test_valid_env_value_does_not_warn(self, monkeypatch):
        import warnings
        from repro.api import resolve_parallel
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_parallel(None) == 3


class TestRunnerAdapter:
    """The corpus runner is now a thin adapter over the API."""

    def test_records_carry_failure_reason(self):
        from repro.experiments.runner import run_instance
        from repro.platform.cluster import Cluster
        from repro.platform.processor import Processor
        inst = synthetic_instances(sizes={"small": (24,)},
                                   families=("blast",))[0]
        tiny = Cluster([Processor("p", 1.0, 0.001)])
        records = run_instance(inst, tiny, config=FAST_CFG,
                               scale_memory=False)
        assert all(not r.success for r in records)
        assert all(r.failure_reason.startswith("NoFeasibleMappingError:")
                   for r in records)

    def test_records_carry_winning_k_prime(self):
        from repro.experiments.runner import run_instance
        inst = synthetic_instances(sizes={"small": (24,)},
                                   families=("blast",))[0]
        records = run_instance(inst, default_cluster(), config=FAST_CFG)
        by_alg = {r.algorithm: r for r in records}
        assert by_alg["DagHetPart"].k_prime in (1, 4, 12)
        assert by_alg["DagHetMem"].k_prime is None
