"""Tests of Step 4 (swaps and idle-processor moves)."""

import pytest

from repro.core.makespan import makespan
from repro.core.quotient import QuotientGraph
from repro.core.swaps import improve_by_swaps, move_critical_to_idle
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.workflow.graph import Workflow


def _two_block_wf():
    """heavy -> light chain; swapping fast/slow processors matters."""
    wf = Workflow()
    wf.add_task("h1", work=50.0, memory=1.0)
    wf.add_task("h2", work=50.0, memory=1.0)
    wf.add_task("l1", work=1.0, memory=1.0)
    wf.add_edge("h1", "h2", 1.0)
    wf.add_edge("h2", "l1", 1.0)
    return wf


class TestSwaps:
    def test_swap_fixes_inverted_speeds(self):
        wf = _two_block_wf()
        slow = Processor("slow", 1.0, 100.0)
        fast = Processor("fast", 10.0, 100.0)
        cluster = Cluster([slow, fast])
        q = QuotientGraph.from_partition(
            wf, [{"h1", "h2"}, {"l1"}], [slow, fast])  # heavy on slow: bad
        cache = RequirementCache(wf)
        before = makespan(q, cluster)
        n = improve_by_swaps(q, cluster, cache)
        after = makespan(q, cluster)
        assert n == 1
        assert after < before
        assert q.blocks[q.block_of("h1")].proc.name == "fast"

    def test_swap_respects_memory(self):
        wf = _two_block_wf()
        slow = Processor("slow", 1.0, 100.0)
        fast = Processor("fast", 10.0, 1.5)  # too small for the heavy block
        cluster = Cluster([slow, fast])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [slow, fast])
        cache = RequirementCache(wf)
        assert improve_by_swaps(q, cluster, cache) == 0

    def test_no_improving_swap_is_noop(self):
        wf = _two_block_wf()
        fast = Processor("fast", 10.0, 100.0)
        slow = Processor("slow", 1.0, 100.0)
        cluster = Cluster([fast, slow])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [fast, slow])
        cache = RequirementCache(wf)
        before = makespan(q, cluster)
        assert improve_by_swaps(q, cluster, cache) == 0
        assert makespan(q, cluster) == before

    def test_swaps_monotonically_improve(self):
        from repro.generators.families import generate_workflow
        from repro.experiments.instances import scaled_cluster_for
        from repro.partition.api import acyclic_partition
        from repro.platform.presets import default_cluster
        from repro.core.assignment import biggest_assign
        wf = generate_workflow("bwa", 80, seed=1)
        cluster = scaled_cluster_for(wf, default_cluster())
        cache = RequirementCache(wf)
        partition = acyclic_partition(wf, 8)
        state = biggest_assign(wf, cluster, partition, cache=cache)
        q = QuotientGraph.from_partition(
            wf, [state.blocks[b] for b in state.blocks],
            [state.assigned.get(b) for b in state.blocks])
        from repro.core.merging import merge_unassigned_to_assigned
        assert merge_unassigned_to_assigned(q, cluster, cache)
        before = makespan(q, cluster)
        improve_by_swaps(q, cluster, cache)
        assert makespan(q, cluster) <= before + 1e-9


class TestIdleMoves:
    def test_moves_critical_block_to_faster_idle(self):
        wf = _two_block_wf()
        slow = Processor("slow", 1.0, 100.0)
        slower = Processor("slower", 0.5, 100.0)
        fast_idle = Processor("fast", 10.0, 100.0)
        cluster = Cluster([slow, slower, fast_idle])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [slow, slower])
        cache = RequirementCache(wf)
        before = makespan(q, cluster)
        n = move_critical_to_idle(q, cluster, cache)
        assert n >= 1
        assert makespan(q, cluster) < before
        assert "fast" in q.used_processors()

    def test_no_idle_processors_is_noop(self):
        wf = _two_block_wf()
        p0 = Processor("p0", 1.0, 100.0)
        p1 = Processor("p1", 2.0, 100.0)
        cluster = Cluster([p0, p1])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [p0, p1])
        cache = RequirementCache(wf)
        assert move_critical_to_idle(q, cluster, cache) == 0

    def test_memory_blocks_idle_move(self):
        wf = _two_block_wf()
        slow = Processor("slow", 1.0, 100.0)
        other = Processor("o", 1.0, 100.0)
        fast_small = Processor("fast", 10.0, 1.0)  # cannot hold anything
        cluster = Cluster([slow, other, fast_small])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [slow, other])
        cache = RequirementCache(wf)
        assert move_critical_to_idle(q, cluster, cache) == 0

    def test_each_block_moved_at_most_once(self):
        """The paper moves each critical-path task once."""
        wf = _two_block_wf()
        s1 = Processor("s1", 1.0, 100.0)
        s2 = Processor("s2", 1.1, 100.0)
        f1 = Processor("f1", 5.0, 100.0)
        f2 = Processor("f2", 10.0, 100.0)
        cluster = Cluster([s1, s2, f1, f2])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [s1, s2])
        cache = RequirementCache(wf)
        moves = move_critical_to_idle(q, cluster, cache)
        # both blocks can move once each, at most
        assert moves <= 2
