"""Tests of Step 4 (swaps and idle-processor moves)."""

import pytest

from repro.core.makespan import makespan
from repro.core.quotient import QuotientGraph
from repro.core.swaps import improve_by_swaps, move_critical_to_idle
from repro.memdag.requirement import RequirementCache
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.workflow.graph import Workflow


def _two_block_wf():
    """heavy -> light chain; swapping fast/slow processors matters."""
    wf = Workflow()
    wf.add_task("h1", work=50.0, memory=1.0)
    wf.add_task("h2", work=50.0, memory=1.0)
    wf.add_task("l1", work=1.0, memory=1.0)
    wf.add_edge("h1", "h2", 1.0)
    wf.add_edge("h2", "l1", 1.0)
    return wf


class TestSwaps:
    def test_swap_fixes_inverted_speeds(self):
        wf = _two_block_wf()
        slow = Processor("slow", 1.0, 100.0)
        fast = Processor("fast", 10.0, 100.0)
        cluster = Cluster([slow, fast])
        q = QuotientGraph.from_partition(
            wf, [{"h1", "h2"}, {"l1"}], [slow, fast])  # heavy on slow: bad
        cache = RequirementCache(wf)
        before = makespan(q, cluster)
        n = improve_by_swaps(q, cluster, cache)
        after = makespan(q, cluster)
        assert n == 1
        assert after < before
        assert q.blocks[q.block_of("h1")].proc.name == "fast"

    def test_swap_respects_memory(self):
        wf = _two_block_wf()
        slow = Processor("slow", 1.0, 100.0)
        fast = Processor("fast", 10.0, 1.5)  # too small for the heavy block
        cluster = Cluster([slow, fast])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [slow, fast])
        cache = RequirementCache(wf)
        assert improve_by_swaps(q, cluster, cache) == 0

    def test_no_improving_swap_is_noop(self):
        wf = _two_block_wf()
        fast = Processor("fast", 10.0, 100.0)
        slow = Processor("slow", 1.0, 100.0)
        cluster = Cluster([fast, slow])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [fast, slow])
        cache = RequirementCache(wf)
        before = makespan(q, cluster)
        assert improve_by_swaps(q, cluster, cache) == 0
        assert makespan(q, cluster) == before

    def test_swaps_monotonically_improve(self):
        from repro.generators.families import generate_workflow
        from repro.experiments.instances import scaled_cluster_for
        from repro.partition.api import acyclic_partition
        from repro.platform.presets import default_cluster
        from repro.core.assignment import biggest_assign
        wf = generate_workflow("bwa", 80, seed=1)
        cluster = scaled_cluster_for(wf, default_cluster())
        cache = RequirementCache(wf)
        partition = acyclic_partition(wf, 8)
        state = biggest_assign(wf, cluster, partition, cache=cache)
        q = QuotientGraph.from_partition(
            wf, [state.blocks[b] for b in state.blocks],
            [state.assigned.get(b) for b in state.blocks])
        from repro.core.merging import merge_unassigned_to_assigned
        assert merge_unassigned_to_assigned(q, cluster, cache)
        before = makespan(q, cluster)
        improve_by_swaps(q, cluster, cache)
        assert makespan(q, cluster) <= before + 1e-9


class TestIdleMoves:
    def test_moves_critical_block_to_faster_idle(self):
        wf = _two_block_wf()
        slow = Processor("slow", 1.0, 100.0)
        slower = Processor("slower", 0.5, 100.0)
        fast_idle = Processor("fast", 10.0, 100.0)
        cluster = Cluster([slow, slower, fast_idle])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [slow, slower])
        cache = RequirementCache(wf)
        before = makespan(q, cluster)
        n = move_critical_to_idle(q, cluster, cache)
        assert n >= 1
        assert makespan(q, cluster) < before
        assert "fast" in q.used_processors()

    def test_no_idle_processors_is_noop(self):
        wf = _two_block_wf()
        p0 = Processor("p0", 1.0, 100.0)
        p1 = Processor("p1", 2.0, 100.0)
        cluster = Cluster([p0, p1])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [p0, p1])
        cache = RequirementCache(wf)
        assert move_critical_to_idle(q, cluster, cache) == 0

    def test_memory_blocks_idle_move(self):
        wf = _two_block_wf()
        slow = Processor("slow", 1.0, 100.0)
        other = Processor("o", 1.0, 100.0)
        fast_small = Processor("fast", 10.0, 1.0)  # cannot hold anything
        cluster = Cluster([slow, other, fast_small])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [slow, other])
        cache = RequirementCache(wf)
        assert move_critical_to_idle(q, cluster, cache) == 0

    def test_each_block_moved_at_most_once(self):
        """The paper moves each critical-path task once."""
        wf = _two_block_wf()
        s1 = Processor("s1", 1.0, 100.0)
        s2 = Processor("s2", 1.1, 100.0)
        f1 = Processor("f1", 5.0, 100.0)
        f2 = Processor("f2", 10.0, 100.0)
        cluster = Cluster([s1, s2, f1, f2])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [s1, s2])
        cache = RequirementCache(wf)
        moves = move_critical_to_idle(q, cluster, cache)
        # both blocks can move once each, at most
        assert moves <= 2

    def test_freed_processor_is_reused(self):
        """A processor vacated by a move must rejoin the idle pool.

        Chain h->m->l: h starts on a mid-speed processor and jumps to the
        fast idle one; the vacated mid processor must then be available
        for the slower critical block.
        """
        wf = Workflow()
        wf.add_task("h", work=100.0, memory=1.0)
        wf.add_task("m", work=100.0, memory=1.0)
        wf.add_task("l", work=1.0, memory=1.0)
        wf.add_edge("h", "m", 0.01)
        wf.add_edge("m", "l", 0.01)
        slow = Processor("slow", 1.0, 100.0)
        mid = Processor("mid", 2.0, 100.0)
        tiny = Processor("tiny", 1.5, 100.0)
        fast = Processor("fast", 10.0, 100.0)
        cluster = Cluster([slow, mid, tiny, fast])
        q = QuotientGraph.from_partition(
            wf, [{"h"}, {"m"}, {"l"}], [mid, slow, tiny])
        cache = RequirementCache(wf)
        moves = move_critical_to_idle(q, cluster, cache)
        used = q.used_processors()
        assert moves >= 2
        assert "fast" in used
        # "m" (was on slow, speed 1) picked up the vacated mid (speed 2)
        assert q.blocks[q.block_of("m")].proc.name == "mid"

    def test_idle_moves_with_evaluator_match_full_recompute(self):
        from repro.core.evaluator import MakespanEvaluator
        wf = _two_block_wf()
        slow = Processor("slow", 1.0, 100.0)
        slower = Processor("slower", 0.5, 100.0)
        fast_idle = Processor("fast", 10.0, 100.0)
        cluster = Cluster([slow, slower, fast_idle])

        def build():
            return QuotientGraph.from_partition(
                wf, [{"h1", "h2"}, {"l1"}], [slow, slower])

        cache = RequirementCache(wf)
        q1, q2 = build(), build()
        n1 = move_critical_to_idle(q1, cluster, cache)
        n2 = move_critical_to_idle(q2, cluster, cache,
                                   evaluator=MakespanEvaluator(q2, cluster))
        assert n1 == n2
        assert makespan(q1, cluster) == makespan(q2, cluster)
        assert {b.proc.name for b in q1.blocks.values()} == \
               {b.proc.name for b in q2.blocks.values()}


class TestSwapIdentity:
    def test_same_processor_object_is_skipped(self):
        """Two blocks on the *same* processor are never swap partners."""
        wf = _two_block_wf()
        p = Processor("p", 1.0, 100.0)
        cluster = Cluster([p])
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [p, p])
        cache = RequirementCache(wf)
        assert improve_by_swaps(q, cluster, cache) == 0

    def test_distinct_objects_with_equal_names_still_swap(self):
        """Identity, not name equality, decides whether a swap is a no-op.

        Blocks can carry processor objects from different cluster
        generations (e.g. before/after memory rescaling) whose names
        collide; an improving swap between them must not be skipped.
        """
        wf = _two_block_wf()
        slow = Processor("p", 1.0, 100.0)
        fast = Processor("p", 10.0, 100.0)  # same name, different machine
        cluster = Cluster([Processor("q0", 1.0, 100.0)])  # only for beta
        q = QuotientGraph.from_partition(wf, [{"h1", "h2"}, {"l1"}], [slow, fast])
        cache = RequirementCache(wf)
        before = makespan(q, cluster)
        assert improve_by_swaps(q, cluster, cache) == 1
        assert makespan(q, cluster) < before
        assert q.blocks[q.block_of("h1")].proc is fast

    def test_requirement_cache_tolerates_new_block_ids(self):
        """Requirements are (re)computed lazily per round, so ids created
        after the first call (merges between searches) are priced too."""
        wf = Workflow()
        for name in "abcd":
            wf.add_task(name, work=10.0 if name in "ab" else 1.0, memory=1.0)
        wf.add_edge("a", "b", 1.0)
        wf.add_edge("b", "c", 1.0)
        wf.add_edge("c", "d", 1.0)
        slow = Processor("slow", 1.0, 100.0)
        fast = Processor("fast", 10.0, 100.0)
        p3 = Processor("p3", 1.0, 100.0)
        cluster = Cluster([slow, fast, p3])
        q = QuotientGraph.from_partition(
            wf, [{"a"}, {"b"}, {"c"}, {"d"}], [slow, None, fast, p3])
        cache = RequirementCache(wf)
        merged, _ = q.merge(q.block_of("a"), q.block_of("b"))
        q.set_proc(merged, slow)  # heavy merged block on the slow proc
        assert improve_by_swaps(q, cluster, cache) >= 1
        assert q.blocks[q.block_of("a")].proc.name == "fast"
