"""Tests of the traversal engines and the memdag front-end."""

import numpy as np
import pytest

from repro.generators.random_dag import random_workflow
from repro.memdag.model import peak_of_traversal
from repro.memdag.requirement import RequirementCache, block_requirement
from repro.memdag.spize import layered_traversal
from repro.memdag.traversal import (
    best_first_traversal,
    brute_force_min_peak,
    memdag_traversal,
    sp_traversal,
)
from repro.workflow.graph import Workflow


def _is_topological(wf, order, block=None):
    block = set(block) if block is not None else set(wf.tasks())
    pos = {u: i for i, u in enumerate(order)}
    for u in block:
        for v in wf.children(u):
            if v in block and pos[u] > pos[v]:
                return False
    return True


class TestBestFirst:
    def test_valid_topological_order(self, fig1_workflow):
        order = best_first_traversal(fig1_workflow)
        assert _is_topological(fig1_workflow, order)
        assert len(order) == 9

    def test_block_restriction(self, fig1_workflow):
        block = {6, 7, 8}
        order = best_first_traversal(fig1_workflow, block)
        assert set(order) == block
        assert _is_topological(fig1_workflow, order, block)

    def test_deterministic(self, fig1_workflow):
        assert best_first_traversal(fig1_workflow) == best_first_traversal(fig1_workflow)

    def test_prefers_memory_releasers(self):
        """After a fork, the engine should consume files before producing more."""
        wf = Workflow()
        wf.add_task("src", memory=1.0)
        wf.add_task("producer", memory=1.0)  # generates a big file
        wf.add_task("consumer", memory=1.0)  # consumes src's file
        wf.add_task("sink", memory=1.0)
        wf.add_edge("src", "producer", 1.0)
        wf.add_edge("src", "consumer", 30.0)
        wf.add_edge("producer", "sink", 50.0)
        wf.add_edge("consumer", "sink", 1.0)
        order = best_first_traversal(wf)
        assert order.index("consumer") < order.index("producer")


class TestLayered:
    def test_valid_topological_order(self, fig1_workflow):
        order = layered_traversal(fig1_workflow)
        assert _is_topological(fig1_workflow, order)

    def test_respects_block(self, fig1_workflow):
        order = layered_traversal(fig1_workflow, {1, 2, 3, 4})
        assert set(order) == {1, 2, 3, 4}


class TestSpEngine:
    def test_chain_exact(self, chain_workflow):
        order = sp_traversal(chain_workflow)
        assert order == ["a", "b", "c", "d"]

    def test_single_task(self):
        wf = Workflow()
        wf.add_task("only")
        assert sp_traversal(wf) == ["only"]

    def test_optimal_on_random_sp_graphs(self):
        """SP engine matches brute force on randomly nested fork-joins."""
        rng = np.random.default_rng(11)
        checked = 0
        for _ in range(120):
            wf = _random_sp_workflow(rng)
            if wf.n_tasks > 9:
                continue
            order = sp_traversal(wf)
            assert order is not None, "SP graph not recognized"
            assert _is_topological(wf, order)
            sp_peak = peak_of_traversal(wf, order)
            brute = brute_force_min_peak(wf)
            assert sp_peak == pytest.approx(brute.peak)
            checked += 1
        assert checked >= 30


class TestMemdagFrontend:
    def test_returns_valid_traversal(self, fig1_workflow):
        result = memdag_traversal(fig1_workflow)
        assert _is_topological(fig1_workflow, result.order)
        assert result.peak == pytest.approx(
            peak_of_traversal(fig1_workflow, list(result.order)))

    def test_peak_bounds(self):
        """max r_u <= memdag peak <= sum of activations (serial worst case)."""
        rng = np.random.default_rng(5)
        for seed in range(10):
            wf = random_workflow(30, seed=rng)
            result = memdag_traversal(wf)
            lower = max(wf.task_requirement(u) for u in wf.tasks())
            assert result.peak >= lower - 1e-9
            upper = sum(wf.memory(u) + wf.out_cost(u) for u in wf.tasks())
            assert result.peak <= upper + 1e-9

    def test_never_worse_than_each_engine(self, fig1_workflow):
        full = memdag_traversal(fig1_workflow)
        bf_only = memdag_traversal(fig1_workflow, methods=("best_first",))
        assert full.peak <= bf_only.peak + 1e-9

    def test_close_to_optimal_on_small_dags(self):
        rng = np.random.default_rng(17)
        gaps = []
        for seed in range(25):
            wf = random_workflow(8, width=3, seed=rng)
            result = memdag_traversal(wf)
            brute = brute_force_min_peak(wf)
            assert result.peak >= brute.peak - 1e-9
            gaps.append(result.peak / brute.peak if brute.peak > 0 else 1.0)
        assert np.mean(gaps) < 1.1  # empirically ~1.02

    def test_empty_block(self, fig1_workflow):
        result = memdag_traversal(fig1_workflow, block=set())
        assert result.order == () and result.peak == 0.0

    def test_unknown_method_raises(self, fig1_workflow):
        with pytest.raises(ValueError):
            memdag_traversal(fig1_workflow, methods=("nonsense",))


class TestBruteForce:
    def test_rejects_large_blocks(self):
        wf = random_workflow(20, seed=0)
        with pytest.raises(ValueError):
            brute_force_min_peak(wf, limit=10)

    def test_chain_has_single_order(self, chain_workflow):
        result = brute_force_min_peak(chain_workflow)
        assert list(result.order) == ["a", "b", "c", "d"]


class TestRequirementCache:
    def test_caches_by_task_set(self, fig1_workflow):
        cache = RequirementCache(fig1_workflow)
        cache.peak({1, 2})
        cache.peak({2, 1})
        assert cache.misses == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_matches_direct_computation(self, fig1_workflow):
        cache = RequirementCache(fig1_workflow)
        direct = block_requirement(fig1_workflow, {6, 7, 8})
        assert cache.peak({6, 7, 8}) == pytest.approx(direct.peak)

    def test_singleton_equals_task_requirement(self, diamond_workflow):
        cache = RequirementCache(diamond_workflow)
        for u in diamond_workflow.tasks():
            assert cache.peak({u}) == pytest.approx(
                diamond_workflow.task_requirement(u))


def _random_sp_workflow(rng) -> Workflow:
    """Randomly nested series/parallel workflow between two terminals."""
    wf = Workflow()
    counter = [0]

    def new_task():
        counter[0] += 1
        name = f"t{counter[0]}"
        wf.add_task(name, memory=float(rng.integers(1, 10)))
        return name

    def build(u, v, depth):
        r = rng.random()
        if depth == 0 or r < 0.3:
            wf.add_edge(u, v, float(rng.integers(1, 8)))
        elif r < 0.6:
            mid = new_task()
            build(u, mid, depth - 1)
            build(mid, v, depth - 1)
        else:
            for _ in range(int(rng.integers(2, 4))):
                build(u, v, depth - 1)

    s, t = new_task(), new_task()
    build(s, t, 3)
    return wf


class TestExactEngine:
    def test_exact_engine_matches_brute_force(self):
        rng = np.random.default_rng(23)
        for _ in range(10):
            wf = random_workflow(9, width=3, seed=rng)
            exact = memdag_traversal(wf, methods=("best_first", "exact"))
            brute = brute_force_min_peak(wf)
            assert exact.peak == pytest.approx(brute.peak)

    def test_exact_skipped_above_limit(self):
        from repro.memdag.traversal import EXACT_SIZE_LIMIT
        wf = random_workflow(EXACT_SIZE_LIMIT + 5, seed=0)
        result = memdag_traversal(wf, methods=("best_first", "exact"))
        assert result.method == "best_first"  # exact engine not attempted


class TestTreesAreOptimal:
    def test_sp_engine_exact_on_random_out_trees(self):
        """Out-trees are series-parallel; the SP engine must be optimal
        (Liu's classical tree-pebbling setting)."""
        rng = np.random.default_rng(31)
        for _ in range(20):
            wf = Workflow()
            n = int(rng.integers(4, 9))
            wf.add_task(0, memory=float(rng.integers(1, 8)))
            for i in range(1, n):
                parent = int(rng.integers(0, i))
                wf.add_task(i, memory=float(rng.integers(1, 8)))
                wf.add_edge(parent, i, float(rng.integers(1, 9)))
            result = memdag_traversal(wf, methods=("sp",))
            brute = brute_force_min_peak(wf)
            assert result.peak == pytest.approx(brute.peak)
