"""Tests of Step 2 (BiggestAssign / FitBlock)."""

import pytest

from repro.core.assignment import AssignmentState, biggest_assign
from repro.generators.families import generate_workflow
from repro.memdag.requirement import RequirementCache
from repro.partition.api import acyclic_partition
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.workflow.graph import Workflow


def _simple_chain(n, mem=4.0, cost=1.0):
    wf = Workflow()
    for i in range(n):
        wf.add_task(i, work=1.0, memory=mem)
        if i:
            wf.add_edge(i - 1, i, cost)
    return wf


class TestBasicAssignment:
    def test_all_blocks_fit(self, fig1_workflow, fig1_partition, unit_cluster):
        state = biggest_assign(fig1_workflow, unit_cluster, fig1_partition)
        assert len(state.assigned) == 4
        assert state.unassigned == []
        assert state.all_tasks_covered(fig1_workflow)

    def test_biggest_block_gets_biggest_memory(self, fig1_workflow, fig1_partition):
        procs = [Processor("m100", 1.0, 100.0), Processor("m50", 1.0, 50.0),
                 Processor("m25", 1.0, 25.0), Processor("m12", 1.0, 12.0)]
        cluster = Cluster(procs)
        cache = RequirementCache(fig1_workflow)
        state = biggest_assign(fig1_workflow, cluster, fig1_partition, cache=cache)
        # the block with the largest requirement must sit on m100
        by_proc = {p.name: bid for bid, p in state.assigned.items()}
        reqs = {bid: cache.peak(tasks) for bid, tasks in state.blocks.items()}
        assert reqs[by_proc["m100"]] == max(reqs[b] for b in state.assigned)

    def test_oversized_block_is_split(self):
        # fan-in workload accumulates memory: the whole-graph requirement
        # far exceeds one processor, single tasks fit comfortably
        wf = Workflow()
        wf.add_task("sink", work=1.0, memory=1.0)
        for i in range(8):
            wf.add_task(i, work=1.0, memory=1.0)
            if i:
                wf.add_edge(i - 1, i, 0.5)
            wf.add_edge(i, "sink", 3.0)
        procs = [Processor(f"p{j}", 1.0, 12.0) for j in range(8)]
        state = biggest_assign(wf, Cluster(procs), [set(wf.tasks())])
        assert state.n_splits >= 1
        assert len(state.assigned) >= 2
        assert state.all_tasks_covered(wf)

    def test_assigned_blocks_fit_their_processors(self):
        wf = generate_workflow("bwa", 100, seed=2)
        from repro.experiments.instances import scaled_cluster_for
        from repro.platform.presets import default_cluster
        cluster = scaled_cluster_for(wf, default_cluster())
        partition = acyclic_partition(wf, 12)
        cache = RequirementCache(wf)
        state = biggest_assign(wf, cluster, partition, cache=cache)
        for bid, proc in state.assigned.items():
            assert cache.peak(state.blocks[bid]) <= proc.memory + 1e-9

    def test_distinct_processors(self):
        wf = generate_workflow("blast", 60, seed=4)
        from repro.experiments.instances import scaled_cluster_for
        from repro.platform.presets import default_cluster
        cluster = scaled_cluster_for(wf, default_cluster())
        partition = acyclic_partition(wf, 10)
        state = biggest_assign(wf, cluster, partition)
        names = [p.name for p in state.assigned.values()]
        assert len(names) == len(set(names))


class TestLeftoverBlocks:
    def test_more_blocks_than_processors(self):
        wf = _simple_chain(12, mem=2.0)
        partition = [{3 * i, 3 * i + 1, 3 * i + 2} for i in range(4)]
        cluster = Cluster([Processor("p0", 1.0, 100.0), Processor("p1", 1.0, 100.0)])
        state = biggest_assign(wf, cluster, partition)
        assert len(state.assigned) == 2
        assert len(state.unassigned) >= 2
        assert state.all_tasks_covered(wf)

    def test_leftovers_partitioned_to_smallest_memory(self):
        wf = _simple_chain(12, mem=2.0)
        partition = [set(range(6)), set(range(6, 12))]
        # one big processor gets one block; leftover must be shattered to <= 5.5
        cluster = Cluster([Processor("big", 1.0, 100.0)])
        cache = RequirementCache(wf)
        state = biggest_assign(wf, cluster, partition, cache=cache)
        p_min = cluster.smallest_memory_processor()
        for bid in state.unassigned:
            if bid in state.oversized:
                continue
            assert cache.peak(state.blocks[bid]) <= p_min.memory + 1e-9

    def test_unsplittable_oversized_reported(self):
        wf = Workflow()
        wf.add_task("huge", work=1.0, memory=1000.0)
        wf.add_task("ok", work=1.0, memory=1.0)
        wf.add_edge("huge", "ok", 1.0)
        cluster = Cluster([Processor("p", 1.0, 10.0)])
        state = biggest_assign(wf, cluster, [{"huge"}, {"ok"}])
        assert state.oversized
        assert set(state.unassigned) >= set(state.oversized)
        assert state.all_tasks_covered(wf)


class TestAssignmentState:
    def test_next_id_monotonic(self):
        state = AssignmentState()
        assert state.next_id() == 0
        assert state.next_id() == 1

    def test_all_tasks_covered_detects_loss(self, fig1_workflow):
        state = AssignmentState()
        state.blocks[0] = {1, 2, 3}
        assert not state.all_tasks_covered(fig1_workflow)
