"""Tests of the fluent WorkflowBuilder."""

import pytest

from repro.workflow.builder import WorkflowBuilder


class TestBasics:
    def test_task_and_link(self):
        wf = (WorkflowBuilder("t")
              .task("a", work=2, memory=3)
              .task("b")
              .link("a", "b", cost=5)
              .build())
        assert wf.work("a") == 2
        assert wf.edge_cost("a", "b") == 5

    def test_duplicate_task_rejected(self):
        b = WorkflowBuilder().task("a")
        with pytest.raises(ValueError, match="already exists"):
            b.task("a")

    def test_link_requires_existing_tasks(self):
        b = WorkflowBuilder().task("a")
        with pytest.raises(KeyError):
            b.link("a", "ghost")


class TestPatterns:
    def test_chain(self):
        wf = WorkflowBuilder().chain(["a", "b", "c"], work=2, cost=1).build()
        assert wf.n_tasks == 3
        assert wf.has_edge("a", "b") and wf.has_edge("b", "c")
        assert not wf.has_edge("a", "c")

    def test_chain_after(self):
        wf = (WorkflowBuilder()
              .task("root")
              .chain(["x", "y"], after="root", cost=2)
              .build())
        assert wf.edge_cost("root", "x") == 2

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            WorkflowBuilder().chain([])

    def test_fan_out_and_join(self):
        wf = (WorkflowBuilder()
              .fan_out("split", ["w0", "w1", "w2"], cost=3)
              .join(["w0", "w1", "w2"], "merge", cost=1)
              .build())
        assert wf.out_degree("split") == 3
        assert wf.in_degree("merge") == 3

    def test_fan_out_existing_source(self):
        wf = (WorkflowBuilder()
              .task("src")
              .fan_out("src", ["a", "b"], source_exists=True)
              .build())
        assert wf.out_degree("src") == 2

    def test_stage_parallel_links(self):
        wf = (WorkflowBuilder()
              .fan_out("s", ["a0", "a1"])
              .stage(["a0", "a1"], ["b0", "b1"], cost=2)
              .build())
        assert wf.has_edge("a0", "b0")
        assert wf.has_edge("a1", "b1")
        assert not wf.has_edge("a0", "b1")

    def test_stage_length_mismatch(self):
        b = WorkflowBuilder().fan_out("s", ["a0", "a1"])
        with pytest.raises(ValueError):
            b.stage(["a0"], ["b0", "b1"])


class TestBuildValidation:
    def test_build_validates(self):
        b = WorkflowBuilder().task("a", work=-5)
        with pytest.raises(Exception):
            b.build()

    def test_build_without_validation(self):
        wf = WorkflowBuilder().task("a", work=-5).build(validate=False)
        assert wf.work("a") == -5

    def test_docstring_example_schedulable(self):
        from repro.core.heuristic import DagHetPartConfig, dag_het_part
        from repro.platform.cluster import Cluster
        from repro.platform.processor import Processor
        wf = (WorkflowBuilder("pipeline")
              .task("ingest", work=10, memory=4)
              .chain(["decode", "filter"], work=50, memory=8, cost=16)
              .fan_out("split", ["align0", "align1", "align2"],
                       work=200, memory=24, cost=8)
              .join(["align0", "align1", "align2"], "merge", cost=4)
              .link("ingest", "decode", cost=8)
              .link("filter", "split", cost=16)
              .build())
        cluster = Cluster([Processor(f"p{i}", 4.0, 200.0) for i in range(4)])
        mapping = dag_het_part(wf, cluster,
                               DagHetPartConfig(k_prime_strategy="all"))
        mapping.validate()
