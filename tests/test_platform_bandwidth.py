"""Tests of heterogeneous interconnect bandwidths (future-work extension)."""

import pytest

from repro.core.makespan import bottom_weights, makespan
from repro.core.mapping import simulate_mapping
from repro.core.quotient import QuotientGraph
from repro.platform.bandwidth import (
    GroupedBandwidth,
    LinkBandwidth,
    UniformBandwidth,
)
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor


class TestModels:
    def test_uniform(self):
        m = UniformBandwidth(2.0)
        assert m.between("a", "b") == 2.0
        assert m.default == 2.0

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            UniformBandwidth(0.0)

    def test_link_matrix_symmetric(self):
        m = LinkBandwidth({("a", "b"): 10.0}, default_beta=1.0)
        assert m.between("a", "b") == 10.0
        assert m.between("b", "a") == 10.0
        assert m.between("a", "c") == 1.0

    def test_link_same_processor_free(self):
        m = LinkBandwidth({}, default_beta=1.0)
        assert m.between("a", "a") == float("inf")

    def test_link_invalid(self):
        with pytest.raises(ValueError):
            LinkBandwidth({("a", "b"): -1.0}, default_beta=1.0)
        with pytest.raises(ValueError):
            LinkBandwidth({}, default_beta=0.0)

    def test_link_self_pair_rejected(self):
        # a self-link entry would serialize as a 2-element row to_dict
        # cannot round-trip, and between() ignores it anyway (inf)
        with pytest.raises(ValueError):
            LinkBandwidth({("a", "a"): 2.0}, default_beta=1.0)

    @pytest.mark.parametrize("model", [
        UniformBandwidth(2.5),
        LinkBandwidth({("a", "b"): 10.0, ("b", "c"): 0.25}, default_beta=1.0),
        GroupedBandwidth({"a": "s1", "b": "s1", "c": "s2"}, 10.0, 0.5),
    ])
    def test_to_dict_roundtrip(self, model):
        from repro.platform.bandwidth import model_from_dict
        back = model_from_dict(model.to_dict())
        assert back.to_dict() == model.to_dict()
        for p, q in (("a", "b"), ("b", "a"), ("a", "c"), ("x", "y")):
            assert back.between(p, q) == model.between(p, q)
        assert back.default == model.default

    def test_model_from_dict_unknown_type(self):
        from repro.platform.bandwidth import model_from_dict
        with pytest.raises(ValueError):
            model_from_dict({"type": "warp"})

    def test_grouped(self):
        m = GroupedBandwidth({"a": "site1", "b": "site1", "c": "site2"},
                             intra_beta=10.0, inter_beta=0.5)
        assert m.between("a", "b") == 10.0
        assert m.between("a", "c") == 0.5
        assert m.default == 0.5  # conservative: inter-group
        assert m.group_of("a") == "site1"

    def test_grouped_unknown_processor_uses_inter(self):
        m = GroupedBandwidth({"a": "s"}, intra_beta=10.0, inter_beta=1.0)
        assert m.between("a", "mystery") == 1.0


class TestClusterIntegration:
    def test_default_is_uniform(self):
        cluster = Cluster([Processor("p", 1, 1)], bandwidth=3.0)
        assert isinstance(cluster.bandwidth_model, UniformBandwidth)
        assert cluster.link_bandwidth("p", "p") == 3.0

    def test_model_sets_scalar_default(self):
        model = GroupedBandwidth({"a": "x"}, intra_beta=8.0, inter_beta=2.0)
        cluster = Cluster([Processor("a", 1, 1)], bandwidth_model=model)
        assert cluster.bandwidth == 2.0

    def test_with_bandwidth_model(self):
        cluster = Cluster([Processor("a", 1, 1), Processor("b", 1, 1)])
        model = LinkBandwidth({("a", "b"): 5.0}, default_beta=1.0)
        c2 = cluster.with_bandwidth_model(model)
        assert c2.link_bandwidth(c2["a"], c2["b"]) == 5.0
        assert cluster.link_bandwidth(cluster["a"], cluster["b"]) == 1.0

    def test_undecided_endpoint_uses_default(self):
        model = LinkBandwidth({("a", "b"): 5.0}, default_beta=1.5)
        cluster = Cluster([Processor("a", 1, 1), Processor("b", 1, 1)],
                          bandwidth_model=model)
        assert cluster.link_bandwidth(None, cluster["b"]) == 1.5


class TestMakespanWithHeterogeneousLinks:
    def _quotient(self, procs, chain_workflow):
        return QuotientGraph.from_partition(
            chain_workflow, [{"a", "b"}, {"c", "d"}], procs)

    def test_fast_link_shrinks_makespan(self, chain_workflow):
        pa, pb = Processor("pa", 1, 1e9), Processor("pb", 1, 1e9)
        fast = Cluster([pa, pb], bandwidth_model=LinkBandwidth(
            {("pa", "pb"): 10.0}, default_beta=1.0))
        slow = Cluster([pa, pb], bandwidth=1.0)
        q_fast = self._quotient([pa, pb], chain_workflow)
        q_slow = self._quotient([pa, pb], chain_workflow)
        # edge (b, c) costs 1.0: transferred at 10 vs 1
        assert makespan(q_fast, fast) == pytest.approx(10.0 + 0.1)
        assert makespan(q_slow, slow) == pytest.approx(10.0 + 1.0)

    def test_grouped_sites_penalize_cross_site_cuts(self, chain_workflow):
        pa = Processor("pa", 1, 1e9)
        pb = Processor("pb", 1, 1e9)
        same_site = GroupedBandwidth({"pa": "s1", "pb": "s1"}, 10.0, 0.1)
        cross_site = GroupedBandwidth({"pa": "s1", "pb": "s2"}, 10.0, 0.1)
        cluster_same = Cluster([pa, pb], bandwidth_model=same_site)
        cluster_cross = Cluster([pa, pb], bandwidth_model=cross_site)
        q1 = self._quotient([pa, pb], chain_workflow)
        q2 = self._quotient([pa, pb], chain_workflow)
        assert makespan(q1, cluster_same) < makespan(q2, cluster_cross)

    def test_simulation_agrees_with_bottom_weights(self, fig1_workflow,
                                                   fig1_partition):
        procs = [Processor(f"p{i}", 1.0, 1e9) for i in range(4)]
        model = LinkBandwidth({("p0", "p1"): 4.0, ("p2", "p3"): 0.5},
                              default_beta=1.0)
        cluster = Cluster(procs, bandwidth_model=model)
        from repro.core.mapping import BlockAssignment, Mapping
        from repro.memdag.requirement import RequirementCache
        cache = RequirementCache(fig1_workflow)
        assignments = []
        for tasks, proc in zip(fig1_partition, procs):
            res = cache.requirement(tasks)
            assignments.append(BlockAssignment(frozenset(tasks), proc,
                                               res.peak, res.order))
        mapping = Mapping(fig1_workflow, cluster, assignments)
        assert simulate_mapping(mapping) == pytest.approx(mapping.makespan())

    def test_heuristic_end_to_end_with_sites(self):
        """DagHetPart runs unchanged on a grouped-bandwidth cluster."""
        from repro.core.heuristic import DagHetPartConfig, dag_het_part
        from repro.experiments.instances import scaled_cluster_for
        from repro.generators.families import generate_workflow
        from repro.platform.presets import default_cluster
        wf = generate_workflow("bwa", 60, seed=3)
        base = scaled_cluster_for(wf, default_cluster())
        groups = {p.name: ("site-a" if i < len(base.processors) // 2 else "site-b")
                  for i, p in enumerate(base.processors)}
        cluster = base.with_bandwidth_model(
            GroupedBandwidth(groups, intra_beta=2.0, inter_beta=0.25))
        mapping = dag_het_part(wf, cluster,
                               DagHetPartConfig(k_prime_strategy="doubling"))
        mapping.validate()
        assert simulate_mapping(mapping) == pytest.approx(mapping.makespan())
