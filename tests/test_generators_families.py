"""Tests of the synthetic workflow family generators."""

import pytest

from repro.generators.families import (
    CHAIN_LIKE_FAMILIES,
    FANNED_OUT_FAMILIES,
    WORKFLOW_FAMILIES,
    generate_topology,
    generate_workflow,
)
from repro.generators.weights import PAPER_WEIGHTS
from repro.workflow.analysis import fanout_statistics, topological_levels
from repro.workflow.validation import validate_workflow


class TestTopologies:
    @pytest.mark.parametrize("family", WORKFLOW_FAMILIES)
    @pytest.mark.parametrize("n", [20, 100, 400])
    def test_size_approximately_matches(self, family, n):
        wf = generate_topology(family, n)
        assert abs(wf.n_tasks - n) <= max(8, 0.15 * n)

    @pytest.mark.parametrize("family", WORKFLOW_FAMILIES)
    def test_valid_dag(self, family):
        wf = generate_topology(family, 150)
        validate_workflow(wf)

    @pytest.mark.parametrize("family", WORKFLOW_FAMILIES)
    def test_weakly_connected_from_sources(self, family):
        wf = generate_topology(family, 80)
        # every task reachable from some source (no orphan islands)
        seen = set(wf.sources())
        stack = list(seen)
        while stack:
            u = stack.pop()
            for v in wf.children(u):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        assert seen == set(wf.tasks())

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="valid"):
            generate_topology("sorting_networks", 10)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_topology("blast", 0)


class TestShapes:
    def test_seismology_two_levels(self):
        wf = generate_topology("seismology", 50)
        levels = topological_levels(wf)
        assert max(levels.values()) == 2

    def test_blast_fan(self):
        wf = generate_topology("blast", 103)
        stats = fanout_statistics(wf)
        assert stats["max_out_degree"] == 100  # split_fasta fans to all

    def test_soykb_starts_with_chain(self):
        wf = generate_topology("soykb", 60)
        # the alignment chain: one source followed by single-child tasks
        (source,) = wf.sources()
        u = source
        chain_len = 1
        while wf.out_degree(u) == 1:
            u = next(wf.children(u))
            chain_len += 1
        assert chain_len >= 4

    def test_fanned_vs_chain_classification(self):
        """The paper's grouping: BWA/BLAST widest, SoyKB/Epigenomics narrowest."""
        widths = {f: fanout_statistics(generate_topology(f, 200))["width"]
                  for f in WORKFLOW_FAMILIES}
        for fanned in FANNED_OUT_FAMILIES:
            for chainlike in CHAIN_LIKE_FAMILIES:
                assert widths[fanned] > widths[chainlike]

    def test_montage_has_diamond_structure(self):
        wf = generate_topology("montage", 60)
        # mDiffFit tasks have exactly two project parents
        diffs = [u for u in wf.tasks() if str(u).startswith("mDiffFit")]
        assert diffs
        for d in diffs:
            assert wf.in_degree(d) == 2

    def test_genome_analysis_tasks_read_two_inputs(self):
        wf = generate_topology("genome", 120)
        overlaps = [u for u in wf.tasks() if "mutation_overlap" in str(u)]
        assert overlaps
        for u in overlaps:
            assert wf.in_degree(u) == 2  # merge + sifting


class TestWeights:
    def test_paper_weight_ranges(self):
        wf = generate_workflow("bwa", 120, seed=0)
        for u in wf.tasks():
            assert PAPER_WEIGHTS.work[0] <= wf.work(u) <= PAPER_WEIGHTS.work[1]
            assert PAPER_WEIGHTS.memory[0] <= wf.memory(u) <= PAPER_WEIGHTS.memory[1]
        for _, _, c in wf.edges():
            assert PAPER_WEIGHTS.edge[0] <= c <= PAPER_WEIGHTS.edge[1]

    def test_seeded_generation_deterministic(self):
        a = generate_workflow("genome", 80, seed=42)
        b = generate_workflow("genome", 80, seed=42)
        assert [a.work(u) for u in a.tasks()] == [b.work(u) for u in b.tasks()]
        assert sorted((u, v, c) for u, v, c in a.edges()) == \
            sorted((u, v, c) for u, v, c in b.edges())

    def test_different_seeds_differ(self):
        a = generate_workflow("genome", 80, seed=1)
        b = generate_workflow("genome", 80, seed=2)
        assert [a.work(u) for u in a.tasks()] != [b.work(u) for u in b.tasks()]

    def test_work_factor_scales_only_work(self):
        base = generate_workflow("blast", 50, seed=9)
        scaled = generate_workflow("blast", 50, seed=9, work_factor=4.0)
        for u in base.tasks():
            assert scaled.work(u) == pytest.approx(4.0 * base.work(u))
            assert scaled.memory(u) == pytest.approx(base.memory(u))
