"""Shared fixtures: the paper's Fig. 1 worked example, small clusters, DAGs."""

from __future__ import annotations

import pytest

from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.workflow.graph import Workflow


@pytest.fixture
def fig1_workflow() -> Workflow:
    """The 9-task example DAG of Fig. 1 with unit weights.

    Reconstructed to satisfy every fact the paper states: task 1 is the
    single source, task 9 the single target, parents of 6 are {3, 4},
    children of 6 are {7, 8}, and merging tasks 4 and 9 would create a
    cyclic quotient through edges (4, 6) and (8, 9).
    """
    wf = Workflow("fig1")
    for u in range(1, 10):
        wf.add_task(u, work=1.0, memory=1.0)
    for u, v in [(1, 2), (1, 3), (2, 4), (3, 4),   # inside V1
                 (2, 5),                           # V1 -> V2
                 (3, 6), (4, 6),                   # V1 -> V3 (cost 2 total)
                 (5, 7),                           # V2 -> V3
                 (5, 9),                           # V2 -> V4
                 (6, 7), (6, 8), (7, 8),           # inside V3
                 (8, 9)]:                          # V3 -> V4
        wf.add_edge(u, v, 1.0)
    return wf


@pytest.fixture
def fig1_partition():
    """The partition F of Fig. 1: four blocks with weights 4/1/3/1."""
    return [{1, 2, 3, 4}, {5}, {6, 7, 8}, {9}]


@pytest.fixture
def unit_cluster() -> Cluster:
    """Four unit-speed processors with ample memory and unit bandwidth."""
    return Cluster([Processor(f"p{j}", speed=1.0, memory=1e9) for j in range(4)],
                   bandwidth=1.0, name="unit4")


@pytest.fixture
def tiny_hetero_cluster() -> Cluster:
    """Small heterogeneous cluster for mapping tests."""
    return Cluster([
        Processor("big", speed=2.0, memory=100.0),
        Processor("fast", speed=8.0, memory=30.0),
        Processor("slow", speed=1.0, memory=50.0),
        Processor("tiny", speed=4.0, memory=10.0),
    ], bandwidth=1.0, name="tiny-hetero")


@pytest.fixture
def chain_workflow() -> Workflow:
    """a -> b -> c -> d with distinct weights."""
    wf = Workflow("chain4")
    for i, name in enumerate("abcd"):
        wf.add_task(name, work=float(i + 1), memory=2.0 * (i + 1))
    wf.add_edge("a", "b", 3.0)
    wf.add_edge("b", "c", 1.0)
    wf.add_edge("c", "d", 2.0)
    return wf


@pytest.fixture
def diamond_workflow() -> Workflow:
    """s -> {x, y} -> t diamond."""
    wf = Workflow("diamond")
    wf.add_task("s", work=1.0, memory=1.0)
    wf.add_task("x", work=2.0, memory=4.0)
    wf.add_task("y", work=3.0, memory=6.0)
    wf.add_task("t", work=1.0, memory=1.0)
    wf.add_edge("s", "x", 2.0)
    wf.add_edge("s", "y", 1.0)
    wf.add_edge("x", "t", 3.0)
    wf.add_edge("y", "t", 1.0)
    return wf


@pytest.fixture
def fork_workflow() -> Workflow:
    """One source fanning out to 6 leaves (no join)."""
    wf = Workflow("fork6")
    wf.add_task("root", work=1.0, memory=1.0)
    for i in range(6):
        wf.add_task(f"leaf{i}", work=float(i + 1), memory=1.0)
        wf.add_edge("root", f"leaf{i}", 1.0)
    return wf
