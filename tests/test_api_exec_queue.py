"""Tests of the ``queue`` execution backend: spool, leases, equivalence.

The contract under test: a sweep on the ``queue`` backend — requests
spooled to disk, claimed and solved by independent worker processes — is
bit-for-bit identical (modulo measured ``runtime``) to the ``serial``
backend, including when a worker is SIGKILLed mid-sweep (its claims are
re-enqueued via lease expiry, never lost); requests that keep killing
workers are tombstoned with a structured ``poison`` failure instead of
crash-looping; ``ExecutionPolicy`` semantics (structured timeouts,
deterministic retries) hold exactly as on every in-process backend.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.api import (
    ExecutionPolicy,
    ScheduleRequest,
    available_backends,
    open_cache,
    register_algorithm,
    route,
    solve_batch,
    unregister_algorithm,
)
from repro.api.exec import NESTED_ENV, QueueBackend, Spool, run_worker
from repro.api.exec.queue import (
    DEFAULT_MAX_RECLAIMS,
    POISON_KIND,
    QUEUE_DIR_ENV,
    QUEUE_SPAWN_ENV,
)
from repro.api.exec.worker import WORKER_ERROR_KIND
from repro.core.heuristic import DagHetPartConfig
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster

FAST_CFG = DagHetPartConfig(k_prime_values=(1, 4))


def _request(**overrides) -> ScheduleRequest:
    base = dict(workflow=generate_workflow("blast", 24, seed=1),
                cluster=default_cluster(), algorithm="daghetpart",
                config=FAST_CFG, scale_memory=True, want_mapping=False)
    base.update(overrides)
    return ScheduleRequest(**base)


def _sweep_requests(n=6):
    return [_request(workflow=generate_workflow(family, 24, seed=seed),
                     algorithm=algorithm,
                     config=FAST_CFG if algorithm == "daghetpart" else None,
                     tags={"instance": f"{family}-{seed}-{algorithm}"})
            for seed in range(max(1, n // 4))
            for family in ("blast", "bwa")
            for algorithm in ("daghetmem", "daghetpart")][:n]


def _strip(result):
    return {k: v for k, v in result.to_dict().items() if k != "runtime"}


@pytest.fixture
def attach_spool(tmp_path, monkeypatch):
    """A spool served by one in-process worker thread (shared registry).

    Test-registered algorithms only exist in this interpreter, so policy
    and failure-envelope tests run the worker loop in a thread instead of
    a spawned subprocess; the spool protocol is identical either way.
    """
    spool_dir = str(tmp_path / "spool")
    os.makedirs(spool_dir)
    monkeypatch.setenv(QUEUE_DIR_ENV, spool_dir)
    monkeypatch.setenv(QUEUE_SPAWN_ENV, "0")
    thread = threading.Thread(
        target=run_worker, args=(spool_dir,),
        kwargs=dict(worker_id="w-test", poll_s=0.01), daemon=True)
    thread.start()
    yield spool_dir
    Spool(spool_dir).request_stop()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


# ----------------------------------------------------------------------
# The spool protocol itself
# ----------------------------------------------------------------------
class TestSpool:
    def test_submit_claim_finish_roundtrip(self, tmp_path):
        spool = Spool(str(tmp_path))
        request = _request()
        job_id = spool.submit(request)
        assert spool.counts()["pending"] == 1
        claimed_id, payload = spool.claim("w1")
        assert claimed_id == job_id
        assert payload["reclaims"] == 0
        # the claim moved the file: a sibling finds nothing to take
        assert spool.claim("w2") is None
        rebuilt = ScheduleRequest.from_dict(payload["request"])
        assert rebuilt.workflow.name == request.workflow.name
        result = solve_batch([rebuilt])[0]
        spool.write_result(job_id, result, "w1")
        spool.finish("w1", job_id)
        assert _strip(spool.read_result(job_id)) == _strip(result)
        assert spool.counts() == {"pending": 0, "claimed": 0, "done": 1,
                                  "tombstones": 0}

    def test_empty_spool_path_is_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Spool("")

    def test_expired_lease_reenqueues_claims(self, tmp_path):
        spool = Spool(str(tmp_path), lease_timeout_s=0.15)
        job_id = spool.submit(_request())
        spool.claim("doomed")
        # the lease is fresh: maintain must not steal a live worker's claim
        assert spool.maintain() == 0
        time.sleep(0.3)  # worker "dies": heartbeats stop, lease expires
        assert spool.maintain() == 1
        reclaimed_id, payload = spool.claim("rescuer")
        assert reclaimed_id == job_id
        assert payload["reclaims"] == 1

    def test_poison_request_is_tombstoned_with_structured_failure(
            self, tmp_path):
        spool = Spool(str(tmp_path), lease_timeout_s=0.05, max_reclaims=2)
        request = _request(tags={"case": "poison"})
        job_id = spool.submit(request)
        for round_ in range(3):  # takes out max_reclaims + 1 workers
            assert spool.claim(f"victim-{round_}") is not None
            time.sleep(0.12)
            assert spool.maintain() == 1
        assert spool.claim("survivor") is None  # not re-enqueued again
        result = spool.read_result(job_id)
        assert result is not None
        assert result.failure.kind == POISON_KIND
        assert "reclaimed 3 times" in result.failure.message
        assert result.makespan == float("inf")
        assert result.tags == {"case": "poison"}
        assert spool.counts()["tombstones"] == 1

    def test_result_write_is_atomic_and_idempotent(self, tmp_path):
        spool = Spool(str(tmp_path))
        job_id = spool.submit(_request())
        _, payload = spool.claim("w1")
        result = solve_batch([ScheduleRequest.from_dict(payload["request"])])[0]
        spool.write_result(job_id, result, "w1")
        spool.write_result(job_id, result, "w2")  # duplicate landing is fine
        assert _strip(spool.read_result(job_id)) == _strip(result)
        # no stray staging files survive the atomic renames
        assert os.listdir(os.path.join(str(tmp_path), "tmp")) == []

    def test_stop_marker_roundtrip(self, tmp_path):
        spool = Spool(str(tmp_path))
        assert not spool.stop_requested()
        spool.request_stop()
        spool.request_stop()  # idempotent
        assert spool.stop_requested()
        spool.clear_stop()
        assert not spool.stop_requested()


# ----------------------------------------------------------------------
# The worker loop (in-process: shares the test registry)
# ----------------------------------------------------------------------
class TestWorkerLoop:
    def test_worker_drains_and_exits_on_stop(self, tmp_path):
        spool = Spool(str(tmp_path))
        ids = [spool.submit(r) for r in _sweep_requests(3)]
        done = threading.Event()

        def serve():
            run_worker(str(tmp_path), worker_id="w", poll_s=0.01)
            done.set()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.time() + 30.0
        while not all(spool.has_result(i) for i in ids):
            assert time.time() < deadline
            time.sleep(0.02)
        spool.request_stop()
        assert done.wait(10.0)

    def test_worker_max_idle_exit(self, tmp_path):
        completed = run_worker(str(tmp_path), worker_id="w",
                               poll_s=0.01, max_idle_s=0.05)
        assert completed == 0

    def test_worker_once_mode(self, tmp_path):
        spool = Spool(str(tmp_path))
        ids = [spool.submit(r) for r in _sweep_requests(2)]
        completed = run_worker(str(tmp_path), worker_id="w", once=True)
        assert completed == 1
        assert spool.has_result(ids[0]) and not spool.has_result(ids[1])

    def test_unexpected_exception_becomes_worker_error_envelope(
            self, tmp_path):
        """A bug in an algorithm (not a ReproError) must land a structured
        failure, not leave the parent polling a result that never comes."""

        @register_algorithm("buggy", summary="raises (queue worker tests)")
        def buggy(workflow, cluster, config=None):
            raise RuntimeError("boom: not a ReproError")

        try:
            spool = Spool(str(tmp_path))
            job_id = spool.submit(_request(algorithm="buggy", config=None,
                                           scale_memory=False))
            run_worker(str(tmp_path), worker_id="w", once=True)
            result = spool.read_result(job_id)
            assert result.failure.kind == WORKER_ERROR_KIND
            assert "boom" in result.failure.message
            assert result.makespan == float("inf")
        finally:
            unregister_algorithm("buggy")


# ----------------------------------------------------------------------
# Policy enforcement through the queue (attach mode, in-process worker)
# ----------------------------------------------------------------------
class TestQueuePolicies:
    def test_timeout_is_structured_and_identical_to_serial(
            self, attach_spool):
        @register_algorithm("slowq", summary="sleeps (queue timeout tests)")
        def slowq(workflow, cluster, config=None):
            time.sleep(30.0)
            raise AssertionError("unreachable: the watchdog should fire")

        try:
            request = _request(algorithm="slowq", config=None,
                               scale_memory=False,
                               policy=ExecutionPolicy(timeout_s=0.2))
            start = time.perf_counter()
            [via_queue] = solve_batch([request], backend="queue", parallel=1)
            assert time.perf_counter() - start < 20.0  # nothing hung
            [via_serial] = solve_batch([request], backend="serial")
            assert via_queue.failure.kind == "timeout"
            assert "timeout_s=0.2" in via_queue.failure.message
            assert _strip(via_queue) == _strip(via_serial)
        finally:
            unregister_algorithm("slowq")

    def test_retries_are_deterministic_through_the_queue(self, attach_spool,
                                                         tmp_path):
        counter = tmp_path / "attempts"
        counter.write_text("0")

        @register_algorithm("flakyq", summary="fails twice (queue tests)")
        def flakyq(workflow, cluster, config=None):
            from repro.api import get_algorithm
            from repro.utils.errors import NoFeasibleMappingError
            n = int(counter.read_text()) + 1
            counter.write_text(str(n))
            if n <= 2:
                raise NoFeasibleMappingError(f"transient failure #{n}")
            return get_algorithm("daghetmem").scheduler.run(workflow, cluster)

        try:
            request = _request(algorithm="flakyq", config=None,
                               policy=ExecutionPolicy(retries=2))
            [result] = solve_batch([request], backend="queue", parallel=1)
            assert result.success
            assert int(counter.read_text()) == 3  # exactly 2 retries
        finally:
            unregister_algorithm("flakyq")


# ----------------------------------------------------------------------
# Equivalence with serial — spawned worker subprocesses
# ----------------------------------------------------------------------
class TestQueueEquivalence:
    def test_queue_backend_is_registered_and_never_auto_routed(self):
        assert "queue" in available_backends()
        assert route(("daghetpart",), workers=8) != "queue"
        assert route(("daghetpart",), backend="queue", workers=8) == "queue"

    def test_nested_env_routes_serial(self, monkeypatch):
        monkeypatch.setenv(NESTED_ENV, "1")
        assert route(("daghetpart",), workers=8) == "serial"

    def test_serial_and_queue_sweeps_are_bit_identical(self):
        requests = _sweep_requests(6)
        serial = solve_batch(requests, backend="serial")
        queued = solve_batch(requests, parallel=2, backend="queue")
        assert [_strip(r) for r in queued] == [_strip(r) for r in serial]

    def test_sigkilled_worker_loses_no_requests(self):
        """Kill one of two workers mid-sweep: its claims must be
        re-enqueued on lease expiry and every submission complete with
        serial-identical results."""
        requests = _sweep_requests(8)
        serial = solve_batch(requests, backend="serial")
        backend = QueueBackend(lease_timeout_s=1.0)
        backend.open(2)
        try:
            subs = [backend.submit(r) for r in requests]
            # let the workers boot and start claiming, then kill one hard
            deadline = time.time() + 60.0
            while backend._spool.counts()["done"] == 0:
                assert time.time() < deadline
                time.sleep(0.05)
            os.kill(backend._workers[0].pid, signal.SIGKILL)
            queued = [s.result() for s in subs]
        finally:
            backend.close()
        assert [_strip(r) for r in queued] == [_strip(r) for r in serial]

    def test_workers_share_one_sqlite_cache(self, tmp_path):
        """Spawned workers get the batch's sqlite cache URI: repeats are
        served without re-solving and the second run is all hits."""
        requests = _sweep_requests(4)
        uri = f"sqlite://{tmp_path / 'shared.db'}"
        with open_cache(uri) as cache:
            first = solve_batch(requests, parallel=2, backend="queue",
                                cache=cache)
            stats = cache.stats()
            assert stats["misses"] == len(requests)
            assert stats["entries"] == len(requests)
            second = solve_batch(requests, parallel=2, backend="queue",
                                 cache=cache)
            stats = cache.stats()
            assert stats["hits"] == len(requests)
            assert stats["misses"] == len(requests)  # no second misses
        assert [_strip(r) for r in second] == [_strip(r) for r in first]


# ----------------------------------------------------------------------
# Backend object behaviour
# ----------------------------------------------------------------------
class TestQueueBackendObject:
    def test_fixed_spool_dir_is_not_deleted_on_close(self, tmp_path,
                                                     monkeypatch):
        spool_dir = str(tmp_path / "fixed")
        os.makedirs(spool_dir)
        monkeypatch.setenv(QUEUE_DIR_ENV, spool_dir)
        monkeypatch.setenv(QUEUE_SPAWN_ENV, "0")
        backend = QueueBackend()
        backend.open(1)
        backend.close()
        assert os.path.isdir(spool_dir)  # attach mode never owns the dir

    def test_private_spool_dir_is_cleaned_up(self, monkeypatch):
        monkeypatch.delenv(QUEUE_DIR_ENV, raising=False)
        monkeypatch.setenv(QUEUE_SPAWN_ENV, "0")
        backend = QueueBackend()
        backend.open(1)
        spool_dir = backend._spool_dir
        assert os.path.isdir(spool_dir)
        backend.close()
        assert not os.path.exists(spool_dir)

    def test_default_knobs_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_LEASE_S", "2.5")
        monkeypatch.setenv("REPRO_QUEUE_MAX_RECLAIMS", "7")
        backend = QueueBackend()
        assert backend._lease_timeout_s == 2.5
        assert backend._max_reclaims == 7

    def test_default_knobs_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_MAX_RECLAIMS", raising=False)
        assert QueueBackend()._max_reclaims == DEFAULT_MAX_RECLAIMS

    def test_bad_env_knob_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_LEASE_S", "soon")
        with pytest.raises(ValueError, match="REPRO_QUEUE_LEASE_S"):
            QueueBackend()

    def test_worker_cli_command_parses(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["worker", "/tmp/spool", "--id", "w9", "--cache",
             "sqlite:///tmp/c.db", "--lease", "5", "--max-idle", "30"])
        assert args.spool == "/tmp/spool"
        assert args.id == "w9"
        assert args.lease == 5.0
        assert args.max_idle == 30.0

    def test_scenario_run_accepts_workers_alias(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["scenario", "run", "spec.json", "--backend", "queue",
             "--workers", "3"])
        assert args.parallel == 3
        assert args.backend == "queue"
