"""Tests of the acyclic partitioner's public contract."""

import numpy as np
import pytest

from repro.generators.families import WORKFLOW_FAMILIES, generate_workflow
from repro.generators.random_dag import random_workflow
from repro.partition.api import (
    acyclic_partition,
    bisect_block,
    partition_quality,
)
from repro.utils.errors import PartitionSplitError
from repro.workflow.graph import Workflow


def _check_contract(wf, blocks, k):
    """Disjoint cover, non-empty blocks, acyclic quotient, at most k blocks."""
    assert 1 <= len(blocks) <= k
    seen = set()
    for b in blocks:
        assert b, "empty block"
        assert not (b & seen), "overlapping blocks"
        seen |= b
    assert seen == set(wf.tasks())
    index = {u: i for i, b in enumerate(blocks) for u in b}
    # quotient acyclicity via longest-path check on block DAG
    succ = {i: set() for i in range(len(blocks))}
    for u, v, _ in wf.edges():
        if index[u] != index[v]:
            succ[index[u]].add(index[v])
    indeg = {i: 0 for i in succ}
    for outs in succ.values():
        for j in outs:
            indeg[j] += 1
    ready = [i for i, d in indeg.items() if d == 0]
    seen_blocks = 0
    while ready:
        i = ready.pop()
        seen_blocks += 1
        for j in succ[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    assert seen_blocks == len(blocks), "cyclic quotient"


class TestBasicContract:
    def test_k1_single_block(self, fig1_workflow):
        blocks = acyclic_partition(fig1_workflow, 1)
        assert len(blocks) == 1
        assert blocks[0] == set(range(1, 10))

    def test_small_graph_contract(self, fig1_workflow):
        for k in (2, 3, 4, 9):
            blocks = acyclic_partition(fig1_workflow, k)
            _check_contract(fig1_workflow, blocks, k)

    def test_chain_partitions_contiguously(self, chain_workflow):
        blocks = acyclic_partition(chain_workflow, 2, weight="unit")
        _check_contract(chain_workflow, blocks, 2)
        assert len(blocks) == 2

    def test_invalid_k(self, fig1_workflow):
        with pytest.raises(ValueError):
            acyclic_partition(fig1_workflow, 0)

    def test_unknown_weight(self, fig1_workflow):
        with pytest.raises(ValueError, match="weight"):
            acyclic_partition(fig1_workflow, 2, weight="bogus")

    def test_empty_node_set(self, fig1_workflow):
        assert acyclic_partition(fig1_workflow, 2, nodes=[]) == []

    def test_fewer_blocks_than_k_on_tiny_graphs(self):
        wf = Workflow()
        wf.add_edge("a", "b")
        blocks = acyclic_partition(wf, 10)
        assert len(blocks) <= 2


class TestOnFamilies:
    @pytest.mark.parametrize("family", WORKFLOW_FAMILIES)
    def test_families_contract(self, family):
        wf = generate_workflow(family, 120, seed=1)
        for k in (2, 8, 16):
            blocks = acyclic_partition(wf, k)
            _check_contract(wf, blocks, k)

    def test_balance_is_reasonable(self):
        wf = generate_workflow("epigenomics", 200, seed=2)
        blocks = acyclic_partition(wf, 8, weight="work")
        q = partition_quality(wf, blocks, weight="work")
        # multilevel with eps=0.1: allow slack but catch degenerate splits
        assert q["imbalance"] < 2.0

    def test_cut_beats_random_partition(self):
        rng = np.random.default_rng(0)
        wf = generate_workflow("genome", 150, seed=3)
        blocks = acyclic_partition(wf, 6)
        cut = partition_quality(wf, blocks)["cut"]
        # random acyclic chunking of a Kahn order, averaged
        order = wf.topological_order()
        random_cuts = []
        for _ in range(5):
            bounds = sorted(rng.choice(len(order) - 1, size=5, replace=False) + 1)
            assignment = {}
            b = 0
            for i, u in enumerate(order):
                while b < len(bounds) and i >= bounds[b]:
                    b += 1
                assignment[u] = b
            random_cuts.append(sum(
                c for u, v, c in wf.edges() if assignment[u] != assignment[v]))
        assert cut <= np.mean(random_cuts)


class TestOnRandomDags:
    def test_random_contract(self):
        rng = np.random.default_rng(9)
        for seed in range(8):
            wf = random_workflow(int(rng.integers(10, 120)), seed=rng)
            k = int(rng.integers(2, 12))
            blocks = acyclic_partition(wf, k)
            _check_contract(wf, blocks, k)


class TestBisect:
    def test_bisect_block(self, fig1_workflow):
        pieces = bisect_block(fig1_workflow, {1, 2, 3, 4, 5})
        assert len(pieces) >= 2
        assert set().union(*pieces) == {1, 2, 3, 4, 5}

    def test_singleton_raises(self, fig1_workflow):
        with pytest.raises(PartitionSplitError):
            bisect_block(fig1_workflow, {1})

    def test_two_tasks_split(self, fig1_workflow):
        pieces = bisect_block(fig1_workflow, {1, 2})
        assert sorted(len(p) for p in pieces) == [1, 1]

    def test_bisect_respects_subset(self, fig1_workflow):
        pieces = bisect_block(fig1_workflow, {6, 7, 8})
        assert set().union(*pieces) == {6, 7, 8}


class TestQuality:
    def test_partition_quality_fields(self, fig1_workflow):
        blocks = acyclic_partition(fig1_workflow, 3)
        q = partition_quality(fig1_workflow, blocks)
        assert set(q) == {"cut", "imbalance", "n_blocks"}
        assert q["n_blocks"] == len(blocks)
        assert q["cut"] >= 0
