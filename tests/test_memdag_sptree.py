"""Tests of series-parallel recognition and decomposition."""

import pytest

from repro.memdag.sp_tree import SPTree, is_series_parallel, sp_decompose


class TestRecognition:
    def test_single_edge(self):
        tree = sp_decompose([("s", "t")], "s", "t")
        assert tree is not None
        assert tree.kind == "leaf"

    def test_chain(self):
        edges = [("s", "a"), ("a", "b"), ("b", "t")]
        tree = sp_decompose(edges, "s", "t")
        assert tree is not None
        assert tree.kind == "series"
        assert tree.via == ["a", "b"] or sorted(tree.via) == ["a", "b"]

    def test_diamond(self):
        edges = [("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")]
        tree = sp_decompose(edges, "s", "t")
        assert tree is not None
        assert tree.kind == "parallel"
        assert len(tree.children) == 2

    def test_nested_fork_join(self):
        edges = [("s", "a"), ("a", "t"), ("s", "b"), ("b", "c"), ("c", "t"),
                 ("s", "t")]
        tree = sp_decompose(edges, "s", "t")
        assert tree is not None
        internal = set(tree.internal_vertices())
        assert internal == {"a", "b", "c"}

    def test_non_sp_n_graph(self):
        """The 'N' (crossing) graph is the canonical non-TTSP DAG."""
        edges = [("s", "a"), ("s", "b"), ("a", "x"), ("a", "y"), ("b", "y"),
                 ("x", "t"), ("y", "t")]
        assert not is_series_parallel(edges, "s", "t")

    def test_empty_edges(self):
        assert sp_decompose([], "s", "t") is None

    def test_montage_like_not_sp(self):
        # project i feeds diff i and diff i-1: the overlap breaks SP-ness
        edges = [("s", "p0"), ("s", "p1"), ("s", "p2"),
                 ("p0", "d0"), ("p1", "d0"), ("p1", "d1"), ("p2", "d1"),
                 ("d0", "t"), ("d1", "t")]
        assert not is_series_parallel(edges, "s", "t")


class TestInternalVertices:
    def test_chain_order_respects_series(self):
        edges = [("s", "a"), ("a", "b"), ("b", "t")]
        tree = sp_decompose(edges, "s", "t")
        order = tree.internal_vertices()
        assert order == ["a", "b"]

    def test_all_vertices_covered(self):
        edges = [("s", "a"), ("a", "t"), ("s", "b"), ("b", "t"),
                 ("s", "c"), ("c", "d"), ("d", "t")]
        tree = sp_decompose(edges, "s", "t")
        assert set(tree.internal_vertices()) == {"a", "b", "c", "d"}


class TestWorkflowFamiliesAreSP:
    @pytest.mark.parametrize("family", ["blast", "bwa", "seismology", "epigenomics"])
    def test_fork_join_families_are_sp(self, family):
        from repro.generators.families import generate_topology
        from repro.memdag.traversal import sp_traversal
        wf = generate_topology(family, 40)
        assert sp_traversal(wf) is not None

    def test_montage_is_not_sp(self):
        from repro.generators.families import generate_topology
        from repro.memdag.traversal import sp_traversal
        wf = generate_topology("montage", 40)
        assert sp_traversal(wf) is None
