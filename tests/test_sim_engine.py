"""Behavioural tests of the event-driven replay engine.

The anchor property: replaying a plan with *no* events realizes exactly
``Mapping.makespan()`` — the projection is the same bottom-weight
recursion. Everything else perturbs that baseline and checks the
documented semantics: fail kills in-flight work, leave drains it, join
adds capacity, arrivals enter the pending pool, inflation stretches the
realized schedule, and the whole replay is deterministic per seed.
"""

import math

import pytest

from repro.api.batch import solve
from repro.api.envelopes import ScheduleRequest
from repro.generators.families import generate_workflow
from repro.platform.cluster import Cluster
from repro.platform.presets import cluster_by_name
from repro.platform.processor import Processor
from repro.sim.engine import SimEngine
from repro.sim.events import (
    DynamicsSpec,
    PoissonArrivals,
    ProcessorChurn,
    RuntimeInflation,
    TraceArrivals,
)
from repro.utils.errors import NoFeasibleMappingError
from repro.workflow.graph import Workflow


@pytest.fixture(scope="module")
def plan():
    result = solve(ScheduleRequest(
        workflow=generate_workflow("blast", 30, seed=7),
        cluster=cluster_by_name("small"),
        algorithm="cpack", scale_memory=True, want_mapping=True))
    assert result.failure is None and result.mapping is not None
    return result


def _run(plan, *models, policy="warmstart", seed=11, **kwargs):
    dynamics = DynamicsSpec(models=tuple(models), seed=seed,
                            policy=policy, **kwargs)
    engine = SimEngine(plan.mapping, dynamics, algorithm="cpack")
    return engine, engine.run()


def _comparable(metrics):
    """Metrics minus the wall-clock latencies (never reproducible)."""
    return {k: v for k, v in metrics.items() if not k.endswith("_s")}


class TestUndisturbed:
    def test_no_events_realizes_plan_makespan(self, plan):
        engine, report = _run(plan)
        assert math.isclose(report.realized, plan.mapping.makespan(),
                            rel_tol=1e-9)
        assert report.events == []
        assert report.degradation_pct == 0.0
        assert report.metrics["sim_full_passes"] == 0

    def test_all_blocks_complete(self, plan):
        engine, _ = _run(plan)
        assert set(engine.completed) | set(engine._schedule) == \
            set(engine.q.blocks)


class TestDeterminism:
    def test_two_runs_bit_identical(self, plan):
        models = (PoissonArrivals(rate=4.0, count=2, family="blast",
                                  n_tasks=12, start=0.1),
                  ProcessorChurn(fail_times=(0.45,)))
        _, a = _run(plan, *models)
        _, b = _run(plan, *models)
        assert a.events == b.events
        assert _comparable(a.metrics) == _comparable(b.metrics)
        assert a.realized == b.realized


class TestEventSemantics:
    def test_fail_kills_in_flight_blocks(self, plan):
        # the biggest block spans most of the run: it is surely in flight
        victim = max(plan.mapping.assignments,
                     key=lambda a: len(a.tasks)).processor.name
        engine, report = _run(plan, ProcessorChurn(fail_times=(0.5,),
                                                   victims=(victim,)))
        assert victim not in engine.live
        assert report.metrics["sim_failures"] == 1
        assert report.metrics["sim_killed_blocks"] >= 1
        # killed work re-ran elsewhere: migrations count its tasks
        assert report.metrics["sim_task_migrations"] >= 1
        assert report.realized >= report.baseline

    def test_leave_drains_gracefully(self, plan):
        victim = plan.mapping.assignments[0].processor.name
        engine, report = _run(plan, ProcessorChurn(leave_times=(0.5,),
                                                   victims=(victim,)))
        assert victim not in engine.live
        assert report.metrics["sim_leaves"] == 1
        assert report.metrics["sim_killed_blocks"] == 0
        assert set(engine.completed) | set(engine._schedule) == \
            set(engine.q.blocks)

    def test_vanished_victim_is_a_noop(self, plan):
        _, report = _run(plan, ProcessorChurn(fail_times=(0.3, 0.5),
                                              victims=("ghost", "ghost")))
        resolved = [ev for ev in report.events if ev["kind"] == "fail"]
        assert [ev["processor"] for ev in resolved] == ["", ""]
        assert report.metrics["sim_killed_blocks"] == 0

    def test_join_adds_capacity(self, plan):
        engine, report = _run(plan, ProcessorChurn(join_times=(0.3,),
                                                   join_speed=2.0,
                                                   join_memory=32.0))
        assert report.metrics["sim_joins"] == 1
        joined = report.events[0]["processor"]
        assert joined in engine.live
        assert engine.live[joined].speed == 2.0
        # capacity alone changes nothing: no pending work to take it
        assert math.isclose(report.realized, report.baseline, rel_tol=1e-9)

    def test_arrival_enters_and_completes(self, plan):
        n_before = len(list(plan.mapping.workflow.tasks()))
        engine, report = _run(plan, TraceArrivals(times=(0.2,),
                                                  family="blast", n_tasks=12))
        assert report.metrics["sim_arrivals"] == 1
        grown = len(list(engine.wf.tasks())) - n_before
        assert grown > 0
        assert report.metrics["sim_arrived_tasks"] == grown
        assert set(engine.completed) | set(engine._schedule) == \
            set(engine.q.blocks)

    def test_inflation_stretches_schedule(self, plan):
        _, report = _run(plan, RuntimeInflation(times=(0.4,), sigma=0.5,
                                                fraction=1.0))
        assert report.metrics["sim_inflations"] == 1
        assert report.realized >= report.baseline - 1e-9

    def test_absolute_times(self, plan):
        # relative_times off: an event at t=1e-6 lands before anything
        # finishes, so every block is still incomplete when it fires
        engine, report = _run(plan, RuntimeInflation(times=(1e-6,),
                                                     fraction=0.0),
                              relative_times=False)
        assert report.events[0]["time"] == pytest.approx(1e-6)
        assert engine.completed or True  # replay still completes
        assert report.realized > 0


class TestPolicies:
    MODELS = (PoissonArrivals(rate=4.0, count=2, family="blast",
                              n_tasks=12, start=0.1),
              ProcessorChurn(fail_times=(0.45,)))

    def test_warmstart_spends_zero_full_passes(self, plan):
        _, report = _run(plan, *self.MODELS, policy="warmstart")
        assert report.metrics["sim_full_passes"] == 0
        assert report.metrics["sim_replans"] == 0

    def test_static_never_replans(self, plan):
        _, report = _run(plan, *self.MODELS, policy="static")
        assert report.metrics["sim_full_passes"] == 0
        assert report.metrics["sim_replans"] == 0

    def test_resolve_pays_full_passes(self, plan):
        _, report = _run(plan, *self.MODELS, policy="resolve")
        assert report.metrics["sim_replans"] >= 1
        assert report.metrics["sim_full_passes"] >= 1

    def test_all_policies_complete_all_work(self, plan):
        for policy in ("static", "warmstart", "resolve"):
            engine, report = _run(plan, *self.MODELS, policy=policy)
            assert set(engine.completed) | set(engine._schedule) == \
                set(engine.q.blocks), policy
            assert report.realized >= report.baseline


class TestInfeasible:
    def test_losing_the_only_processor_raises(self):
        wf = Workflow("tiny")
        for i in range(3):
            wf.add_task(i, work=10.0, memory=1.0)
        wf.add_edge(0, 1, 1.0)
        wf.add_edge(1, 2, 1.0)
        cluster = Cluster([Processor(name="solo", speed=1.0, memory=100.0)],
                          name="solo-1")
        result = solve(ScheduleRequest(workflow=wf, cluster=cluster,
                                       algorithm="cpack", want_mapping=True))
        assert result.failure is None
        dynamics = DynamicsSpec(models=(ProcessorChurn(fail_times=(0.5,),
                                                       victims=("solo",)),),
                                policy="warmstart")
        with pytest.raises(NoFeasibleMappingError):
            SimEngine(result.mapping, dynamics).run()
