"""Exact solver: differential optimality, guards, registry integration.

The ground truth is a deliberately naive enumerator — every partition
crossed with every injective processor choice, each evaluated through
the shared :class:`Mapping` makespan engine — so the solver's pruned
search is checked against an implementation with no pruning to be wrong
about.
"""

import itertools
import random

import pytest

from repro.api import ExactConfig, ScheduleRequest, solve
from repro.api.schedulers import PortfolioConfig, resolve_portfolio_members
from repro.core.exact import (
    DEFAULT_MAX_TASKS,
    _partitions,
    _quotient_edges,
    exact_schedule,
)
from repro.core.mapping import BlockAssignment, Mapping
from repro.memdag.requirement import RequirementCache
from repro.platform.bandwidth import LinkBandwidth
from repro.platform.cluster import Cluster, Processor
from repro.utils.errors import NoFeasibleMappingError
from repro.workflow.graph import Workflow


def _random_workflow(rng, n):
    wf = Workflow(f"rand{n}")
    for i in range(n):
        wf.add_task(i, work=rng.uniform(1, 10), memory=rng.uniform(1, 4))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.4:
                wf.add_edge(i, j, cost=rng.uniform(0.1, 5))
    return wf


def _hetero_cluster():
    return Cluster([
        Processor("p0", speed=3.0, memory=6.0),
        Processor("p1", speed=3.0, memory=6.0),   # p0's twin: one kind
        Processor("p2", speed=1.5, memory=12.0),
        Processor("p3", speed=1.0, memory=20.0),
    ], bandwidth=2.0, name="tiny-hetero")


def _naive_optimum(wf, cluster):
    """Exhaustive ground truth (no kind grouping, no pruning)."""
    cache = RequirementCache(wf)
    tasks = wf.topological_order()
    best = None
    for part in _partitions(tasks, min(cluster.k, len(tasks))):
        block_of = {t: b for b, blk in enumerate(part) for t in blk}
        if _quotient_edges(wf, block_of, len(part)) is None:
            continue
        peaks = [cache.peak(b) for b in part]
        for procs in itertools.permutations(cluster.processors, len(part)):
            if any(pk > p.memory + 1e-9 for pk, p in zip(peaks, procs)):
                continue
            assignments = [
                BlockAssignment(tasks=frozenset(b), processor=p,
                                requirement=pk,
                                traversal=cache.requirement(b).order)
                for b, p, pk in zip(part, procs, peaks)]
            ms = Mapping(wf, cluster, assignments).makespan()
            if best is None or ms < best:
                best = ms
    return best


class TestPartitionEnumeration:
    @pytest.mark.parametrize("n,bell", [(1, 1), (2, 2), (3, 5), (4, 15),
                                        (5, 52)])
    def test_counts_match_bell_numbers(self, n, bell):
        parts = list(_partitions(list(range(n)), n))
        assert len(parts) == bell
        keys = {tuple(sorted(tuple(sorted(b)) for b in p)) for p in parts}
        assert len(keys) == bell  # all distinct

    def test_max_blocks_caps_the_enumeration(self):
        parts = list(_partitions([0, 1, 2], 1))
        assert parts == [[[0, 1, 2]]]


class TestOptimality:
    def test_matches_naive_enumeration(self):
        rng = random.Random(7)
        cluster = _hetero_cluster()
        for _ in range(8):
            wf = _random_workflow(rng, rng.randint(1, 6))
            mapping, stats = exact_schedule(wf, cluster)
            mapping.validate()
            truth = _naive_optimum(wf, cluster)
            assert mapping.makespan() == pytest.approx(truth, abs=1e-9)
            assert stats["exact_partitions"] >= stats["exact_feasible"] > 0

    def test_never_beaten_by_the_heuristics(self):
        rng = random.Random(21)
        cluster = _hetero_cluster()
        for _ in range(5):
            wf = _random_workflow(rng, rng.randint(2, 7))
            optimum = exact_schedule(wf, cluster)[0].makespan()
            for algorithm in ("daghetpart", "daghetmem", "cpack"):
                result = solve(ScheduleRequest(workflow=wf, cluster=cluster,
                                               algorithm=algorithm))
                if result.success:
                    assert result.makespan >= optimum - 1e-9

    def test_empty_workflow(self):
        mapping, stats = exact_schedule(Workflow("empty"), _hetero_cluster())
        assert mapping.assignments == []
        assert stats["exact_partitions"] == 0


class TestGuards:
    def test_oversize_instances_are_refused(self):
        n = DEFAULT_MAX_TASKS + 1
        wf = Workflow(f"chain{n}")
        for i in range(n):
            wf.add_task(i, work=float(i + 1), memory=0.5)
            if i:
                wf.add_edge(i - 1, i, cost=1.0)
        with pytest.raises(ValueError, match="at most"):
            exact_schedule(wf, _hetero_cluster())
        # a raised ceiling admits the same instance
        mapping, _ = exact_schedule(
            wf, _hetero_cluster(), config=ExactConfig(max_tasks=n))
        mapping.validate()

    def test_non_uniform_bandwidth_is_refused(self):
        cluster = _hetero_cluster().with_bandwidth_model(
            LinkBandwidth({("p0", "p2"): 9.0}, default_beta=2.0))
        wf = _random_workflow(random.Random(1), 3)
        with pytest.raises(ValueError, match="uniform-bandwidth"):
            exact_schedule(wf, cluster)

    def test_bad_config_is_refused(self):
        with pytest.raises(ValueError, match="max_tasks"):
            ExactConfig(max_tasks=0)

    def test_infeasible_instance_raises_no_feasible_mapping(self):
        wf = Workflow("hungry")
        wf.add_task("a", work=1.0, memory=999.0)
        with pytest.raises(NoFeasibleMappingError) as err:
            exact_schedule(wf, _hetero_cluster())
        assert err.value.unplaced_tasks == 1


class TestRegistryIntegration:
    def test_solve_reports_search_counters(self):
        wf = _random_workflow(random.Random(5), 5)
        result = solve(ScheduleRequest(workflow=wf,
                                       cluster=_hetero_cluster(),
                                       algorithm="exact"))
        assert result.success
        assert result.algorithm == "Exact"
        assert result.extra["exact_partitions"] >= 1
        assert result.extra["exact_evaluations"] >= 1

    def test_infeasible_solve_returns_failure_envelope(self):
        wf = Workflow("hungry")
        wf.add_task("a", work=1.0, memory=999.0)
        result = solve(ScheduleRequest(workflow=wf,
                                       cluster=_hetero_cluster(),
                                       algorithm="exact"))
        assert not result.success
        assert result.failure.kind == "NoFeasibleMappingError"

    def test_portfolio_default_membership_excludes_tiny_only(self):
        assert "exact" not in resolve_portfolio_members(PortfolioConfig())
        # but an explicit opt-in still works
        members = resolve_portfolio_members(
            PortfolioConfig(algorithms=("exact", "daghetpart")))
        assert members == ("exact", "daghetpart")
