"""Tests of the algorithm registry: registration, lookup, rejection."""

import pytest

from repro.api import (
    SchedulerOutput,
    algorithm_infos,
    available_algorithms,
    canonical_name,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.heuristic import DagHetPartConfig
from repro.core.mapping import Mapping
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster


class TestBuiltins:
    def test_builtins_registered(self):
        assert {"daghetmem", "daghetpart"} <= set(available_algorithms())

    def test_display_names_match_records(self):
        assert get_algorithm("daghetmem").display_name == "DagHetMem"
        assert get_algorithm("daghetpart").display_name == "DagHetPart"

    def test_daghetpart_declares_config_and_capabilities(self):
        info = get_algorithm("daghetpart")
        assert info.config_cls is DagHetPartConfig
        assert "k-prime-sweep" in info.capabilities
        assert info.summary

    def test_infos_sorted(self):
        infos = algorithm_infos()
        assert [i.name for i in infos] == sorted(i.name for i in infos)


class TestNameResolution:
    @pytest.mark.parametrize("alias", [
        "daghetpart", "DagHetPart", "dag-het-part", "dag_het_part",
        "DAG HET PART",
    ])
    def test_aliases_resolve(self, alias):
        assert get_algorithm(alias).name == "daghetpart"

    def test_canonical_name(self):
        assert canonical_name("Dag-Het_Part ") == "daghetpart"

    def test_canonical_name_rejects_non_str(self):
        with pytest.raises(TypeError):
            canonical_name(7)

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(ValueError, match="unknown algorithm") as exc:
            get_algorithm("hexagonal")
        assert "daghetmem" in str(exc.value)
        assert "daghetpart" in str(exc.value)


class TestRegistration:
    def test_register_and_solve_through_every_entry_point(self):
        from repro.api import ScheduleRequest, solve
        from repro.core.heuristic import schedule

        @register_algorithm("first-fit-test", display_name="FirstFitTest",
                            capabilities=("test",))
        def first_fit(workflow, cluster, config):
            # trivially valid: everything in one block on the biggest node
            proc = cluster.by_memory_desc()[0]
            from repro.core.quotient import QuotientGraph
            from repro.memdag.requirement import RequirementCache
            cache = RequirementCache(workflow)
            q = QuotientGraph.from_partition(
                workflow, [set(workflow.tasks())], [proc])
            return SchedulerOutput(
                mapping=Mapping.from_quotient(q, cluster, cache,
                                              algorithm="FirstFitTest"))

        try:
            wf = generate_workflow("blast", 20, seed=3)
            cluster = default_cluster()
            # via the API façade
            result = solve(ScheduleRequest(workflow=wf, cluster=cluster,
                                           algorithm="first_fit_test",
                                           scale_memory=True))
            assert result.success and result.algorithm == "FirstFitTest"
            # via the back-compat shim — no string dispatch to update
            from repro.experiments.instances import scaled_cluster_for
            mapping = schedule(wf, scaled_cluster_for(wf, cluster),
                               "FirstFitTest")
            assert mapping.algorithm == "FirstFitTest"
        finally:
            unregister_algorithm("first-fit-test")
        with pytest.raises(ValueError, match="unknown algorithm"):
            get_algorithm("first-fit-test")

    def test_duplicate_name_rejected(self):
        @register_algorithm("dup-test")
        def algo(workflow, cluster, config):  # pragma: no cover - never run
            raise AssertionError
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_algorithm("DUP_TEST")(algo)
        finally:
            unregister_algorithm("dup-test")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            register_algorithm("--__")

    def test_function_must_return_output_or_mapping(self):
        @register_algorithm("bad-return-test")
        def bad(workflow, cluster, config):
            return 42
        try:
            wf = generate_workflow("blast", 16, seed=0)
            with pytest.raises(TypeError, match="SchedulerOutput"):
                get_algorithm("bad-return-test").scheduler.run(
                    wf, default_cluster(), None)
        finally:
            unregister_algorithm("bad-return-test")

    def test_unregister_unknown_is_noop(self):
        unregister_algorithm("never-registered")
