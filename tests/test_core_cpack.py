"""CPack: the greedy critical-path packer (satellite of the kernel PR)."""

from __future__ import annotations

import pytest

from repro.core.cpack import critical_path_pack, rank_order, upward_ranks
from repro.core.kernels import use_kernel
from repro.experiments.instances import scaled_cluster_for
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster
from repro.utils.errors import NoFeasibleMappingError
from repro.workflow.graph import Workflow

FEASIBLE_CORPUS = [
    ("blast", 24), ("blast", 60), ("blast", 120),
    ("genome", 24), ("genome", 120),
    ("bwa", 60),
    ("epigenomics", 24), ("epigenomics", 120),
    ("montage", 60), ("montage", 120),
    ("seismology", 60),
    ("soykb", 24), ("soykb", 120),
]


def _instance(family: str, n: int):
    wf = generate_workflow(family, n, seed=0)
    return wf, scaled_cluster_for(wf, default_cluster())


class TestRankOrder:
    def test_rank_order_is_topological(self):
        wf = generate_workflow("genome", 60, seed=1)
        order = rank_order(wf, upward_ranks(wf, 1.0, 1.0))
        pos = {u: i for i, u in enumerate(order)}
        assert len(order) == wf.n_tasks
        for u, v, _ in wf.edges():
            assert pos[u] < pos[v]

    def test_ranks_decrease_along_edges(self):
        wf = generate_workflow("blast", 40, seed=2)
        ranks = upward_ranks(wf, 2.0, 1.0)
        for u, v, _ in wf.edges():
            assert ranks[u] > ranks[v]


class TestCriticalPathPack:
    @pytest.mark.parametrize("family,n", FEASIBLE_CORPUS)
    def test_feasible_and_valid_across_corpus(self, family, n):
        wf, cluster = _instance(family, n)
        mapping = critical_path_pack(wf, cluster)
        mapping.validate()  # block fit, traversal peaks, full coverage
        assert mapping.algorithm == "CPack"
        assert mapping.makespan() > 0
        covered = set()
        for a in mapping.assignments:
            assert not (covered & a.tasks)
            covered |= a.tasks
        assert covered == set(wf.tasks())

    def test_deterministic(self):
        wf, cluster = _instance("soykb", 60)
        a = critical_path_pack(wf, cluster)
        b = critical_path_pack(wf, cluster)
        assert a.makespan() == b.makespan()
        assert [x.tasks for x in a.assignments] == \
            [x.tasks for x in b.assignments]
        assert [x.processor.name for x in a.assignments] == \
            [x.processor.name for x in b.assignments]

    def test_kernel_independent(self):
        """Identical mapping whichever kernel prices the build."""
        wf, cluster = _instance("bwa", 120)
        with use_kernel("reference"):
            ref = critical_path_pack(wf, cluster)
        with use_kernel("array"):
            arr = critical_path_pack(wf, cluster)
        assert ref.makespan() == arr.makespan()
        assert [x.tasks for x in ref.assignments] == \
            [x.tasks for x in arr.assignments]

    def test_infeasible_instance_raises(self):
        """epigenomics-60 cannot be packed; the contract is a clean raise
        (the portfolio drops the member instead of crashing)."""
        wf, cluster = _instance("epigenomics", 60)
        with pytest.raises(NoFeasibleMappingError):
            critical_path_pack(wf, cluster)

    def test_oversized_task_raises(self):
        wf = Workflow()
        wf.add_task("huge", work=1.0, memory=1e9)
        with pytest.raises(NoFeasibleMappingError):
            critical_path_pack(wf, default_cluster())

    def test_single_task(self):
        wf = Workflow()
        wf.add_task("only", work=5.0, memory=2.0)
        mapping = critical_path_pack(wf, default_cluster())
        mapping.validate()
        assert len(mapping.assignments) == 1
        # the packer puts the lone block on the fastest adequate processor
        fastest = default_cluster().by_speed_desc()[0]
        assert mapping.assignments[0].processor.speed == fastest.speed

    def test_empty_workflow(self):
        mapping = critical_path_pack(Workflow(), default_cluster())
        assert mapping.assignments == []
        assert mapping.makespan() == 0.0

    def test_disconnected_components(self):
        wf = Workflow()
        for i in range(6):
            wf.add_task(f"a{i}", work=10.0, memory=1.0)
        wf.add_edge("a0", "a1", 2.0)
        wf.add_edge("a2", "a3", 2.0)
        # a4, a5 stay isolated
        mapping = critical_path_pack(wf, default_cluster())
        mapping.validate()
        assert {u for a in mapping.assignments for u in a.tasks} == \
            set(wf.tasks())


class TestRegistration:
    def test_registered_and_in_portfolio_defaults(self):
        from repro.api import available_algorithms, get_algorithm
        from repro.api.schedulers import PortfolioConfig, resolve_portfolio_members
        assert "cpack" in available_algorithms()
        spec = get_algorithm("cpack")
        assert "memory-packing" in spec.capabilities
        assert "cpack" in resolve_portfolio_members(PortfolioConfig())

    def test_runs_through_the_facade(self):
        from repro.api import ScheduleRequest, solve
        wf, cluster = _instance("blast", 24)
        result = solve(ScheduleRequest(
            workflow=wf, cluster=cluster, algorithm="cpack",
            scale_memory=False))
        assert result.success
        assert result.makespan > 0
