"""CompiledWorkflow: CSR snapshots, array-native construction, generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators.families import generate_workflow
from repro.generators.random_dag import random_workflow
from repro.generators.synthetic_arrays import SYNTHETIC_SHAPES, synthetic_compiled
from repro.utils.errors import CyclicWorkflowError
from repro.workflow.compiled import CompiledWorkflow
from repro.workflow.graph import Workflow


def _assert_matches(cw: CompiledWorkflow, wf: Workflow) -> None:
    """The compiled view reproduces the dict workflow exactly."""
    assert cw.n_tasks == wf.n_tasks
    assert cw.n_edges == wf.n_edges
    assert cw.nodes == list(wf.tasks())
    for u in wf.tasks():
        i = cw.index[u]
        assert cw.work[i] == wf.work(u)
        assert cw.memory[i] == wf.memory(u)
        # CSR rows preserve the dicts' insertion order, bit for bit
        row = slice(cw.out_indptr[i], cw.out_indptr[i + 1])
        assert [cw.nodes[j] for j in cw.out_indices[row]] == \
            [v for v, _ in wf.out_edges(u)]
        assert cw.out_costs[row].tolist() == \
            [c for _, c in wf.out_edges(u)]
        row = slice(cw.in_indptr[i], cw.in_indptr[i + 1])
        assert [cw.nodes[j] for j in cw.in_indices[row]] == \
            [p for p, _ in wf.in_edges(u)]


class TestCompile:
    @pytest.mark.parametrize("family", ["blast", "genome", "montage"])
    def test_matches_workflow(self, family):
        wf = generate_workflow(family, 60, seed=0)
        _assert_matches(wf.compiled(), wf)

    def test_requirements_bit_for_bit(self):
        wf = random_workflow(200, seed=3)
        req = wf.compiled().requirements()
        for u in wf.tasks():
            assert req[wf.compiled().index[u]] == wf.task_requirement(u)

    def test_topo_order_valid_and_levels_consistent(self):
        wf = random_workflow(150, seed=5)
        cw = wf.compiled()
        pos = {int(v): i for i, v in enumerate(cw.topo_order)}
        for u, v, _ in wf.edges():
            iu, iv = cw.index[u], cw.index[v]
            assert pos[iu] < pos[iv]          # parents before children
            assert cw.level[iu] > cw.level[iv]  # level = height above sinks
        assert int(cw.level.max()) == cw.n_levels - 1

    def test_cached_per_mutation_epoch(self):
        wf = random_workflow(30, seed=1)
        first = wf.compiled()
        assert wf.compiled() is first
        wf.add_task("fresh", 1.0, 2.0)
        second = wf.compiled()
        assert second is not first
        assert "fresh" in second.index

    def test_cycle_raises(self):
        wf = Workflow()
        wf.add_edge("a", "b")
        wf.add_edge("b", "c")
        wf.add_edge("c", "a")
        with pytest.raises(CyclicWorkflowError):
            CompiledWorkflow.compile(wf)

    def test_empty_and_single(self):
        empty = Workflow().compiled()
        assert empty.n_tasks == 0 and empty.n_levels == 0
        wf = Workflow()
        wf.add_task("only", 3.0, 4.0)
        cw = wf.compiled()
        assert cw.n_tasks == 1 and cw.n_levels == 1
        assert cw.requirements().tolist() == [4.0]

    def test_to_workflow_round_trip(self):
        wf = generate_workflow("soykb", 40, seed=2)
        back = wf.compiled().to_workflow()
        assert list(back.tasks()) == list(wf.tasks())
        assert sorted(back.edges()) == sorted(wf.edges())
        for u in wf.tasks():
            assert back.task_requirement(u) == wf.task_requirement(u)


class TestFromArrays:
    def test_parallel_edges_collapse_like_add_edge(self):
        cw = CompiledWorkflow.from_arrays(
            src=[0, 0, 0], dst=[1, 2, 1], cost=[1.5, 2.0, 0.25],
            work=[1.0, 1.0, 1.0], memory=[0.0, 0.0, 0.0])
        wf = Workflow()
        for u in range(3):
            wf.add_task(u, 1.0, 0.0)
        for u, v, c in [(0, 1, 1.5), (0, 2, 2.0), (0, 1, 0.25)]:
            wf.add_edge(u, v, c)
        _assert_matches(cw, wf)

    def test_self_loop_and_cycle_raise(self):
        with pytest.raises(CyclicWorkflowError):
            CompiledWorkflow.from_arrays([0], [0], [1.0], [1.0], [0.0])
        with pytest.raises(CyclicWorkflowError):
            CompiledWorkflow.from_arrays(
                [0, 1], [1, 0], [1.0, 1.0], [1.0, 1.0], [0.0, 0.0])

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            CompiledWorkflow.from_arrays([0], [5], [1.0], [1.0, 1.0],
                                         [0.0, 0.0])
        with pytest.raises(ValueError):
            CompiledWorkflow.from_arrays([], [], [], [1.0], [0.0, 0.0])

    def test_edgeless(self):
        cw = CompiledWorkflow.from_arrays([], [], [], [2.0, 3.0], [1.0, 4.0])
        assert cw.n_edges == 0
        assert cw.requirements().tolist() == [1.0, 4.0]
        assert cw.n_levels == 1


class TestSyntheticArrays:
    @pytest.mark.parametrize("shape", SYNTHETIC_SHAPES)
    def test_shapes_build_and_are_topological(self, shape):
        cw = synthetic_compiled(shape, 300, seed=4)
        assert cw.n_tasks == 300
        src = np.repeat(np.arange(cw.n_tasks), np.diff(cw.out_indptr))
        assert np.all(src < cw.out_indices)  # edges go low -> high index

    @pytest.mark.parametrize("shape", SYNTHETIC_SHAPES)
    def test_deterministic_per_seed(self, shape):
        a = synthetic_compiled(shape, 120, seed=9)
        b = synthetic_compiled(shape, 120, seed=9)
        c = synthetic_compiled(shape, 120, seed=10)
        assert a.work.tolist() == b.work.tolist()
        assert a.out_costs.tolist() == b.out_costs.tolist()
        assert a.out_indices.tolist() == b.out_indices.tolist()
        assert a.work.tolist() != c.work.tolist()

    def test_round_trip_matches_dict_pipeline(self):
        cw = synthetic_compiled("layered", 80, seed=1)
        wf = cw.to_workflow()
        recompiled = CompiledWorkflow.compile(wf)
        assert recompiled.requirements().tolist() == \
            cw.requirements().tolist()

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_tiny_instances(self, n):
        for shape in SYNTHETIC_SHAPES:
            cw = synthetic_compiled(shape, n, seed=0)
            assert cw.n_tasks == n

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            synthetic_compiled("torus", 10, seed=0)
