"""Tests of the declarative scenario API: spec → request grid → results."""

import dataclasses
import json

import pytest

import repro.api.batch as batch_module
from repro.api import (
    AlgorithmSpec,
    FamilyGridSource,
    FileWorkflowSource,
    PlatformAxis,
    RealWorkflowSource,
    ScenarioSpec,
    collect_scenario,
    expand,
    load_scenario,
    run_scenario,
    save_scenario,
)
from repro.core.heuristic import DagHetPartConfig

FAST_CONFIG = {"k_prime_values": [1, 4, 12]}


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="tiny",
        workflows=(FamilyGridSource(families=("blast", "bwa"),
                                    sizes={"small": (24,)}),),
        platforms=(PlatformAxis(preset="default", bandwidths=(1.0,)),),
        algorithms=(AlgorithmSpec("daghetmem"),
                    AlgorithmSpec("daghetpart", config=FAST_CONFIG)),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecConstruction:
    def test_sizes_sequence_becomes_custom_category(self):
        src = FamilyGridSource(families=("blast",), sizes=(24, 32))
        assert src.sizes == {"custom": (24, 32)}

    def test_config_dataclass_normalised_to_dict(self):
        alg = AlgorithmSpec("daghetpart",
                            config=DagHetPartConfig(k_prime_values=(1, 4)))
        assert isinstance(alg.config, dict)
        assert alg.config["k_prime_values"] == [1, 4]
        rebuilt = alg.build_config()
        assert rebuilt == DagHetPartConfig(k_prime_values=(1, 4))

    def test_config_on_configless_algorithm_rejected(self):
        alg = AlgorithmSpec("daghetmem", config={"x": 1})
        with pytest.raises(ValueError, match="takes no config"):
            alg.build_config()

    def test_unknown_source_kind_rejected(self):
        from repro.api.scenario import source_from_dict
        with pytest.raises(ValueError, match="unknown workflow source kind"):
            source_from_dict({"kind": "nope"})

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="workflow source"):
            ScenarioSpec(name="x", workflows=())
        with pytest.raises(ValueError, match="platform"):
            tiny_spec(platforms=())
        with pytest.raises(ValueError, match="algorithm"):
            tiny_spec(algorithms=())


class TestJsonRoundTrip:
    def test_round_trip_identity(self):
        spec = tiny_spec(
            workflows=(RealWorkflowSource(names=("airrflow",)),
                       FamilyGridSource(families=("blast",), sizes=(24,)),
                       ),
            platforms=(PlatformAxis(preset="small", bandwidths=(0.5, 2.0),
                                    memory_factors=(1.0, 4.0)),),
            tags={"series": "{family}@{bandwidth}", "constant": 7},
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "spec.json")
        spec = tiny_spec()
        save_scenario(spec, path)
        assert load_scenario(path) == spec
        # the file is plain, editable JSON
        data = json.loads(open(path).read())
        assert data["name"] == "tiny"
        assert data["workflows"][0]["kind"] == "families"


class TestExpand:
    def test_grid_size_and_order(self):
        spec = tiny_spec(platforms=(PlatformAxis(bandwidths=(0.5, 1.0)),))
        requests = list(expand(spec))
        assert len(requests) == spec.size() == 2 * 2 * 2
        # instance-major, bandwidth middle, algorithm minor
        assert [r.tags["family"] for r in requests] == \
            ["blast"] * 4 + ["bwa"] * 4
        assert [r.cluster.bandwidth for r in requests] == [0.5, 0.5, 1.0, 1.0] * 2
        assert [r.algorithm for r in requests] == ["daghetmem", "daghetpart"] * 4

    def test_expansion_is_lazy(self, monkeypatch):
        import repro.generators.families as families_module
        generated = []
        real = families_module.generate_workflow
        monkeypatch.setattr(
            families_module, "generate_workflow",
            lambda *a, **kw: generated.append(a) or real(*a, **kw))
        big = tiny_spec(workflows=(FamilyGridSource(sizes={"small": (24,)}),))
        assert big.size() == 7 * 2  # every family, two algorithms
        # pulling the first request must generate exactly one workflow,
        # not the whole grid
        first = next(iter(expand(big)))
        assert first.workflow.n_tasks > 0
        assert len(generated) == 1

    def test_tag_templates(self):
        spec = tiny_spec(tags={"series": "{family}@{preset}", "run": 3})
        req = next(iter(expand(spec)))
        assert req.tags["series"] == "blast@default"
        assert req.tags["run"] == 3
        assert req.tags["instance"] == "blast-24"

    def test_algorithm_template_matches_result_display_name(self):
        spec = tiny_spec(tags={"algo": "{algorithm}"})
        results = collect_scenario(spec)
        for r in results:  # the tag joins cleanly against result.algorithm
            assert r.tags["algo"] == r.algorithm

    def test_unknown_template_field_is_a_clear_error(self):
        spec = tiny_spec(tags={"oops": "{frobnicate}"})
        with pytest.raises(KeyError, match="frobnicate"):
            next(iter(expand(spec)))

    def test_memory_factor_axis_scales_cluster(self):
        spec = tiny_spec(platforms=(PlatformAxis(memory_factors=(1.0, 4.0)),),
                         scale_memory=False)
        requests = list(expand(spec))
        base, scaled = requests[0].cluster, requests[2].cluster
        assert scaled.max_memory() == pytest.approx(4 * base.max_memory())

    def test_replications_shift_seeds_and_names(self):
        spec = tiny_spec(workflows=(FamilyGridSource(
            families=("blast",), sizes={"small": (24,)}, replications=2),))
        names = [r.tags["instance"] for r in expand(spec)
                 if r.algorithm == "daghetmem"]
        assert names == ["blast-24", "blast-24#r1"]

    def test_file_source(self, tmp_path):
        from repro.generators.families import generate_workflow
        from repro.workflow.io import save_workflow_json
        path = str(tmp_path / "wf.json")
        save_workflow_json(generate_workflow("blast", 24, seed=3), path)
        spec = tiny_spec(workflows=(FileWorkflowSource(path=path),))
        requests = list(expand(spec))
        assert len(requests) == 2
        assert requests[0].tags["category"] == "file"
        assert requests[0].workflow.n_tasks >= 20

    def test_unknown_algorithm_fails_eagerly(self):
        spec = tiny_spec(algorithms=(AlgorithmSpec("nope"),))
        with pytest.raises(ValueError, match="unknown algorithm"):
            next(iter(expand(spec)))


class TestFig5Equivalence:
    """Acceptance: one JSON spec reproduces the fig5 family-sweep records."""

    KWARGS = dict(sizes={"small": (24,), "mid": (40,)},
                  families=("blast", "soykb"),
                  config=DagHetPartConfig(k_prime_values=(1, 4, 12)), seed=0)

    def _strip(self, record):
        return dataclasses.replace(record, runtime=0.0)

    def test_json_spec_reproduces_fig5_records(self, tmp_path):
        from repro.experiments import figures
        from repro.experiments.runner import scenario_records

        driver_records = figures.fig5(**self.KWARGS)["records"]

        spec = figures.corpus_scenario(
            "fig5", preset="default", include_real=False, **self.KWARGS)
        path = str(tmp_path / "fig5.json")
        save_scenario(spec, path)  # the whole workload as one JSON file
        spec_records = scenario_records(load_scenario(path))

        assert [self._strip(r) for r in spec_records] == \
            [self._strip(r) for r in driver_records]

    def test_second_cached_run_does_zero_solves(self, tmp_path, monkeypatch):
        from repro.experiments import figures
        from repro.experiments.runner import scenario_records

        spec = figures.corpus_scenario(
            "fig5", preset="default", include_real=False, **self.KWARGS)
        cache_dir = str(tmp_path / "cache")
        first = scenario_records(spec, cache=cache_dir)

        calls = []
        real_solve = batch_module.solve
        monkeypatch.setattr(batch_module, "solve",
                            lambda req: calls.append(req) or real_solve(req))
        second = scenario_records(spec, cache=cache_dir)
        assert calls == []  # served entirely from the on-disk cache
        assert [self._strip(r) for r in first] == \
            [self._strip(r) for r in second]
        # runtimes come back exactly as cached, so even they agree
        assert [r.runtime for r in first] == [r.runtime for r in second]


class TestRunScenario:
    def test_streaming_matches_collect(self):
        spec = tiny_spec()
        streamed = list(run_scenario(spec))
        collected = collect_scenario(spec)
        strip = lambda r: {k: v for k, v in r.to_dict().items()
                           if k != "runtime"}
        assert [strip(r) for r in streamed] == [strip(r) for r in collected]

    def test_parallel_matches_serial(self):
        spec = tiny_spec()
        strip = lambda r: {k: v for k, v in r.to_dict().items()
                           if k != "runtime"}
        assert [strip(r) for r in collect_scenario(spec, parallel=2)] == \
            [strip(r) for r in collect_scenario(spec)]

    def test_crashed_sweep_resumes(self, tmp_path, monkeypatch):
        """A partial cache (crash artifact) only re-solves what is missing."""
        spec = tiny_spec()
        cache_dir = str(tmp_path / "cache")
        # simulate a crash after two results
        it = run_scenario(spec, cache=cache_dir)
        partial = [next(it), next(it)]
        it.close()
        assert len(partial) == 2

        calls = []
        real_solve = batch_module.solve
        monkeypatch.setattr(batch_module, "solve",
                            lambda req: calls.append(req) or real_solve(req))
        full = list(run_scenario(spec, cache=cache_dir))
        assert len(full) == spec.size()
        assert len(calls) == spec.size() - 2  # the two cached ones skipped


class TestExecutionBlock:
    """The optional ``execution`` block: spec-level backend/policy/cache."""

    def _spec_with_execution(self, **kwargs):
        from repro.api import ExecutionSpec
        return tiny_spec(execution=ExecutionSpec(**kwargs))

    def test_round_trips_with_policy(self):
        from repro.api import ExecutionPolicy
        spec = self._spec_with_execution(
            backend="thread", parallel=2, cache="sqlite://cache.db",
            policy=ExecutionPolicy(timeout_s=60.0, retries=1))
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.execution.policy.timeout_s == 60.0

    def test_absent_block_round_trips_as_none(self):
        spec = tiny_spec()
        data = json.loads(spec.to_json())
        assert data["execution"] is None
        assert ScenarioSpec.from_json(spec.to_json()).execution is None
        # pre-execution-block spec files (no key at all) still load
        del data["execution"]
        assert ScenarioSpec.from_dict(data) == spec

    def test_policy_from_plain_dict(self):
        from repro.api import ExecutionSpec
        spec = ExecutionSpec(policy={"timeout_s": 5.0, "retries": 2})
        assert spec.policy.timeout_s == 5.0 and spec.policy.retries == 2

    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            self._spec_with_execution(backend="quantum")

    def test_unknown_field_rejected(self):
        from repro.api.scenario import ExecutionSpec
        with pytest.raises(ValueError, match="unknown execution field"):
            ExecutionSpec.from_dict({"bakend": "serial"})

    def test_expand_attaches_policy_to_every_request(self):
        from repro.api import ExecutionPolicy
        policy = ExecutionPolicy(timeout_s=30.0)
        spec = self._spec_with_execution(policy=policy)
        requests = list(expand(spec))
        assert requests and all(r.policy == policy for r in requests)
        assert all(r.policy is None for r in expand(tiny_spec()))

    def test_run_scenario_uses_spec_backend_and_cache(self, tmp_path,
                                                      monkeypatch):
        from repro.api import ExecutionSpec
        import repro.api.exec.backends as backends_module
        created = []
        real = backends_module.create_backend
        monkeypatch.setattr(backends_module, "create_backend",
                            lambda name: created.append(name) or real(name))
        uri = f"sqlite://{tmp_path}/spec-cache.db"
        spec = tiny_spec(execution=ExecutionSpec(backend="thread",
                                                 parallel=2, cache=uri))
        first = list(run_scenario(spec))
        assert created == ["thread"]
        # the spec's cache URI was honoured: a re-run is fully served
        calls = []
        real_solve = batch_module.solve
        monkeypatch.setattr(batch_module, "solve",
                            lambda req: calls.append(req) or real_solve(req))
        second = list(run_scenario(spec))
        assert calls == []
        strip = lambda r: {k: v for k, v in r.to_dict().items()
                           if k != "runtime"}
        assert [strip(r) for r in first] == [strip(r) for r in second]

    def test_explicit_arguments_override_spec(self, monkeypatch):
        from repro.api import ExecutionSpec
        import repro.api.exec.backends as backends_module
        created = []
        real = backends_module.create_backend
        monkeypatch.setattr(backends_module, "create_backend",
                            lambda name: created.append(name) or real(name))
        spec = tiny_spec(execution=ExecutionSpec(backend="thread"))
        list(run_scenario(spec, backend="serial"))
        assert created == ["serial"]


class TestPaperScenario:
    def test_constant_is_jsonable_and_counts(self):
        from repro.experiments.instances import PAPER_SCENARIO
        spec = ScenarioSpec.from_json(PAPER_SCENARIO.to_json())
        assert spec == PAPER_SCENARIO
        # 5 real + 7 families x 11 sizes instances, 10 platform points,
        # 2 algorithms
        instances = sum(src.count() for src in spec.workflows)
        assert instances == 5 + 7 * 11
        assert spec.size() == instances * 10 * 2

    def test_refinement_constant_is_jsonable_and_expandable(self):
        from repro.experiments.instances import REFINEMENT_SCENARIO
        spec = ScenarioSpec.from_json(REFINEMENT_SCENARIO.to_json())
        assert spec == REFINEMENT_SCENARIO
        instances = sum(src.count() for src in spec.workflows)
        assert spec.size() == instances * 3  # daghetpart, anneal, portfolio
        # the per-algorithm configs rebuild through the registry
        for alg in spec.algorithms:
            alg.build_config()
