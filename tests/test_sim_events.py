"""Round-trip and determinism properties of the frozen dynamics configs.

Every config the simulator freezes — :class:`SimEvent`, the four event
models, and :class:`DynamicsSpec` — must survive ``to_dict``/``to_json``
round trips exactly (the JSON forms are the spec-file surface *and* the
cache-fingerprint payload), and compiling a spec must be deterministic
per seed with sibling models drawing from independent child streams.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sim.events import (
    EVENT_KINDS,
    EVENT_MODEL_KINDS,
    DynamicsSpec,
    PoissonArrivals,
    ProcessorChurn,
    RuntimeInflation,
    SimEvent,
    TraceArrivals,
    model_from_dict,
)

SETTINGS = dict(deadline=None, max_examples=60,
                suppress_health_check=[HealthCheck.too_slow])

_times = st.lists(st.floats(0.0, 10.0, allow_nan=False), max_size=4).map(tuple)
_name = st.sampled_from(["blast", "genome", "montage"])


@st.composite
def sim_events(draw):
    return SimEvent(
        time=draw(st.floats(0.0, 100.0, allow_nan=False)),
        kind=draw(st.sampled_from(EVENT_KINDS)),
        family=draw(_name),
        n_tasks=draw(st.integers(0, 500)),
        seed=draw(st.integers(0, 2**31)),
        processor=draw(st.sampled_from(["", "p0", "big-3"])),
        pick=draw(st.integers(-1, 2**31)),
        speed=draw(st.floats(0.1, 8.0, allow_nan=False)),
        memory=draw(st.floats(0.0, 64.0, allow_nan=False)),
        proc_kind=draw(st.sampled_from(["", "joined", "spot"])),
        factor=draw(st.floats(1.0, 4.0, allow_nan=False)),
        fraction=draw(st.floats(0.0, 1.0, allow_nan=False)))


@st.composite
def event_models(draw):
    which = draw(st.sampled_from(sorted(EVENT_MODEL_KINDS)))
    if which == "poisson_arrivals":
        return PoissonArrivals(
            rate=draw(st.floats(0.1, 10.0, allow_nan=False)),
            count=draw(st.integers(0, 5)),
            family=draw(_name),
            n_tasks=draw(st.integers(1, 100)),
            start=draw(st.floats(0.0, 1.0, allow_nan=False)))
    if which == "trace_arrivals":
        return TraceArrivals(times=draw(_times), family=draw(_name),
                             n_tasks=draw(st.integers(1, 100)))
    if which == "churn":
        return ProcessorChurn(
            fail_times=draw(_times),
            leave_times=draw(_times),
            join_times=draw(_times),
            victims=draw(st.lists(st.sampled_from(["p0", "p1", "big-2"]),
                                  max_size=3).map(tuple)),
            join_speed=draw(st.floats(0.1, 8.0, allow_nan=False)),
            join_memory=draw(st.floats(0.1, 64.0, allow_nan=False)),
            join_kind=draw(st.sampled_from(["joined", "spot"])))
    return RuntimeInflation(
        times=draw(_times),
        sigma=draw(st.floats(0.0, 2.0, allow_nan=False)),
        fraction=draw(st.floats(0.0, 1.0, allow_nan=False)))


@st.composite
def dynamics_specs(draw):
    return DynamicsSpec(
        models=tuple(draw(st.lists(event_models(), max_size=3))),
        seed=draw(st.integers(0, 2**31)),
        policy=draw(st.sampled_from(["static", "warmstart", "resolve"])),
        algorithm=draw(st.sampled_from([None, "cpack", "daghetpart"])),
        relative_times=draw(st.booleans()),
        warm_sweep=draw(st.booleans()),
        horizon=draw(st.one_of(st.none(),
                               st.floats(0.1, 10.0, allow_nan=False))))


class TestRoundTrips:
    @given(ev=sim_events())
    @settings(**SETTINGS)
    def test_sim_event_dict_round_trip(self, ev):
        assert SimEvent.from_dict(ev.to_dict()) == ev

    @given(ev=sim_events())
    @settings(**SETTINGS)
    def test_sim_event_json_round_trip(self, ev):
        # the event log is byte-compared by CI: the record must survive
        # a JSON round trip exactly, floats included
        text = json.dumps(ev.to_dict(), sort_keys=True)
        assert SimEvent.from_dict(json.loads(text)) == ev

    @given(model=event_models())
    @settings(**SETTINGS)
    def test_model_round_trip(self, model):
        again = model_from_dict(model.to_dict())
        assert type(again) is type(model)
        assert again == model

    @given(spec=dynamics_specs())
    @settings(**SETTINGS)
    def test_spec_json_round_trip(self, spec):
        again = DynamicsSpec.from_json(spec.to_json())
        assert again == spec
        # canonical form is stable — it is the fingerprint payload
        assert again.to_json() == spec.to_json()


class TestCompile:
    @given(spec=dynamics_specs())
    @settings(**SETTINGS)
    def test_compile_deterministic(self, spec):
        assert spec.compile() == spec.compile()
        assert DynamicsSpec.from_json(spec.to_json()).compile() == \
            spec.compile()

    @given(spec=dynamics_specs())
    @settings(**SETTINGS)
    def test_compile_sorted_and_bounded(self, spec):
        events = spec.compile()
        times = [ev.time for ev in events]
        assert times == sorted(times)
        if spec.horizon is not None:
            assert all(t <= spec.horizon for t in times)
        for ev in events:
            assert ev.kind in EVENT_KINDS

    @given(spec=dynamics_specs(), extra=event_models())
    @settings(**SETTINGS)
    def test_appending_a_model_keeps_siblings(self, spec, extra):
        # each model draws from its own spawned child stream, so adding
        # one must not shift the events its siblings emit
        grown = DynamicsSpec(models=spec.models + (extra,), seed=spec.seed)
        base = sorted(spec.compile(), key=lambda ev: (ev.time, repr(ev)))
        kept = [ev for ev in grown.compile()]
        for ev in base:
            assert ev in kept

    def test_seed_changes_stream(self):
        model = PoissonArrivals(rate=2.0, count=3)
        a = DynamicsSpec(models=(model,), seed=1).compile()
        b = DynamicsSpec(models=(model,), seed=2).compile()
        assert [ev.time for ev in a] != [ev.time for ev in b]


class TestValidation:
    def test_unknown_event_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            SimEvent(time=0.0, kind="meteor")

    def test_unknown_model_kind(self):
        with pytest.raises(ValueError, match="unknown event model kind"):
            model_from_dict({"kind": "solar_flare"})

    def test_unknown_dynamics_field(self):
        with pytest.raises(ValueError, match="unknown dynamics field"):
            DynamicsSpec.from_dict({"seed": 1, "polcy": "warmstart"})

    def test_bad_model_params(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(count=-1)
        with pytest.raises(ValueError):
            TraceArrivals(times=(1.0,), n_tasks=0)
        with pytest.raises(ValueError):
            ProcessorChurn(join_speed=0.0)
        with pytest.raises(ValueError):
            RuntimeInflation(sigma=-0.1)
        with pytest.raises(ValueError):
            RuntimeInflation(fraction=1.5)
        with pytest.raises(ValueError):
            DynamicsSpec(horizon=0.0)

    def test_victims_consumed_then_random(self):
        churn = ProcessorChurn(fail_times=(0.2, 0.4), victims=("p7",))
        events = churn.events(0)
        explicit = [ev for ev in events if ev.processor]
        random = [ev for ev in events if not ev.processor]
        assert [ev.processor for ev in explicit] == ["p7"]
        assert len(random) == 1 and random[0].pick >= 0
