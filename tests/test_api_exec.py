"""Tests of the execution-backend API: policy, registry, routing, equivalence.

The contract under test: ``solve_batch`` is bit-for-bit identical (modulo
measured ``runtime``) across the ``serial``, ``thread`` and ``process``
backends; a request whose ``ExecutionPolicy.timeout_s`` is exceeded
reports a structured ``FailureInfo(kind="timeout")`` on every backend
without hanging the batch; retries are deterministic.
"""

import dataclasses
import json
import time

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.api import (
    ExecutionPolicy,
    ScheduleRequest,
    SchedulerOutput,
    available_backends,
    create_backend,
    get_algorithm,
    get_backend,
    iter_solve_batch,
    register_algorithm,
    register_backend,
    route,
    solve_batch,
    solve_with_policy,
    unregister_algorithm,
    unregister_backend,
)
from repro.api.exec.routing import BACKEND_ENV
from repro.core.heuristic import DagHetPartConfig
from repro.generators.families import generate_workflow
from repro.platform.presets import default_cluster

BACKENDS = ("serial", "thread", "process")
FAST_CFG = DagHetPartConfig(k_prime_values=(1, 4))


def _request(**overrides) -> ScheduleRequest:
    base = dict(workflow=generate_workflow("blast", 24, seed=1),
                cluster=default_cluster(), algorithm="daghetpart",
                config=FAST_CFG, scale_memory=True, want_mapping=False)
    base.update(overrides)
    return ScheduleRequest(**base)


def _smoke_requests():
    return [
        _request(workflow=generate_workflow(family, 24, seed=seed),
                 algorithm=algorithm,
                 config=FAST_CFG if algorithm == "daghetpart" else None,
                 tags={"instance": f"{family}-{seed}"})
        for family, seed in (("blast", 1), ("bwa", 2))
        for algorithm in ("daghetmem", "daghetpart")
    ]


def _strip(result):
    return {k: v for k, v in result.to_dict().items() if k != "runtime"}


# ----------------------------------------------------------------------
# ExecutionPolicy: validation and JSON round trip
# ----------------------------------------------------------------------
class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.timeout_s is None
        assert policy.attempts == 1
        assert policy.on_timeout == "fail"

    @pytest.mark.parametrize("kwargs", [
        dict(timeout_s=0), dict(timeout_s=-1), dict(timeout_s=float("nan")),
        dict(timeout_s=float("inf")), dict(retries=-1),
        dict(retry_backoff=-0.1), dict(retry_backoff=float("inf")),
        dict(on_timeout="explode"),
    ])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_backoff_doubles_per_retry(self):
        policy = ExecutionPolicy(retries=3, retry_backoff=0.5)
        assert [policy.backoff_s(i) for i in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_json_round_trip(self):
        policy = ExecutionPolicy(timeout_s=2.5, retries=3, retry_backoff=0.1,
                                 on_timeout="requeue")
        assert ExecutionPolicy.from_json(policy.to_json()) == policy

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ExecutionPolicy"):
            ExecutionPolicy.from_dict({"timeout": 5})

    def test_rides_on_request_round_trip(self):
        policy = ExecutionPolicy(timeout_s=9.0, retries=1)
        request = _request(policy=policy)
        rebuilt = ScheduleRequest.from_json(request.to_json())
        assert rebuilt.policy == policy

    def test_policy_excluded_from_fingerprint(self):
        from repro.api import request_fingerprint
        assert request_fingerprint(_request()) == \
            request_fingerprint(_request(policy=ExecutionPolicy(timeout_s=1)))

    def test_plain_dict_policy_coerced_at_construction(self):
        request = _request(policy={"timeout_s": 5.0, "retries": 2})
        assert request.policy == ExecutionPolicy(timeout_s=5.0, retries=2)

    def test_bad_policy_type_fails_at_construction(self):
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            _request(policy=3.5)
        with pytest.raises(ValueError, match="unknown ExecutionPolicy"):
            _request(policy={"timeout": 5})  # misspelled field


POLICIES = st.builds(
    ExecutionPolicy,
    timeout_s=st.one_of(st.none(),
                        st.floats(min_value=1e-3, max_value=1e6,
                                  allow_nan=False, allow_infinity=False)),
    retries=st.integers(min_value=0, max_value=20),
    retry_backoff=st.floats(min_value=0.0, max_value=1e3,
                            allow_nan=False, allow_infinity=False),
    on_timeout=st.sampled_from(("fail", "requeue")),
)


class TestPolicyProperties:
    """Hypothesis round trips, mirroring the PR 4 envelope properties."""

    @given(policy=POLICIES)
    @settings(deadline=None, max_examples=60)
    def test_policy_json_round_trip(self, policy):
        assert ExecutionPolicy.from_json(policy.to_json()) == policy
        # strict JSON: no NaN/Infinity literals sneak through
        json.loads(policy.to_json())

    @given(policy=st.one_of(st.none(), POLICIES),
           backend=st.one_of(st.none(), st.sampled_from(BACKENDS)),
           parallel=st.one_of(st.none(), st.integers(-1, 16)),
           cache=st.one_of(st.none(), st.just("sqlite:///tmp/x.db"),
                           st.just("cache-dir")))
    @settings(deadline=None, max_examples=60)
    def test_execution_spec_round_trip(self, policy, backend, parallel, cache):
        from repro.api import ExecutionSpec
        spec = ExecutionSpec(backend=backend, parallel=parallel,
                             policy=policy, cache=cache)
        assert ExecutionSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_shipped_backends_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_canonical_names(self):
        assert get_backend("Serial").name == "serial"
        assert get_backend("pro-cess").name == "process"

    def test_unknown_backend_lists_valid_names(self):
        with pytest.raises(ValueError, match="serial"):
            get_backend("quantum")

    def test_duplicate_rejected_and_unregister(self):
        @register_backend("testdummy")
        class Dummy:
            name = "testdummy"

            def open(self, workers):
                pass

            def submit(self, request):
                raise NotImplementedError

            def close(self):
                pass

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend("test-dummy")(Dummy)
        finally:
            unregister_backend("testdummy")
        assert "testdummy" not in available_backends()


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_explicit_override_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert route(backend="thread", workers=8) == "thread"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert route(workers=8) == "thread"
        assert route(workers=0) == "thread"

    def test_bad_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "quantum")
        with pytest.raises(ValueError, match="quantum"):
            route(workers=2)

    def test_serial_for_single_worker(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert route(("daghetpart",), workers=0) == "serial"
        assert route(("daghetpart",), workers=1) == "serial"

    def test_process_for_cpu_bound_batch(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert route(("daghetpart",), workers=4) == "process"

    def test_io_bound_algorithms_route_to_threads(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)

        @register_algorithm("iodummy", capabilities=("io-bound",))
        def iodummy(workflow, cluster, config=None):
            raise NotImplementedError

        try:
            assert route(("iodummy",), workers=4) == "thread"
            # a mixed batch falls back to processes
            assert route(("iodummy", "daghetpart"), workers=4) == "process"
        finally:
            unregister_algorithm("iodummy")

    def test_solve_batch_routes_on_every_algorithm(self, monkeypatch):
        """A mixed list must not be GIL-serialized because its first
        request happened to be io-bound: solve_batch has the whole list
        and routes on all algorithm names."""
        import repro.api.exec.backends as backends_module
        monkeypatch.delenv(BACKEND_ENV, raising=False)

        @register_algorithm("iodummy2", capabilities=("io-bound",))
        def iodummy2(workflow, cluster, config=None):
            return get_algorithm("daghetmem").scheduler.run(workflow, cluster)

        created = []
        real = backends_module.create_backend
        monkeypatch.setattr(backends_module, "create_backend",
                            lambda name: created.append(name) or real(name))
        try:
            mixed = [_request(algorithm="iodummy2", config=None),
                     _request(), _request()]
            solve_batch(mixed, parallel=2)
            assert created == ["process"]  # not thread: batch is mixed
            created.clear()
            solve_batch([_request(algorithm="iodummy2", config=None)] * 2,
                        parallel=2)
            assert created == ["thread"]  # all io-bound
        finally:
            unregister_algorithm("iodummy2")

    def test_nested_batch_inside_watchdog_thread_is_serial(self,
                                                           monkeypatch):
        """A timeout policy runs the solve in a watchdog thread; an
        algorithm that itself calls solve_batch (portfolio, parallel>1)
        must not fork a process pool from that threaded parent."""
        import repro.api.exec.backends as backends_module
        from repro.api import PortfolioConfig
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        created = []
        real = backends_module.create_backend
        monkeypatch.setattr(backends_module, "create_backend",
                            lambda name: created.append(name) or real(name))
        request = _request(algorithm="portfolio",
                           config=PortfolioConfig(parallel=2),
                           policy=ExecutionPolicy(timeout_s=60.0))
        [result] = solve_batch([request])
        assert result.success
        assert created == ["serial", "serial"]  # outer batch + nested one

    def test_route_inside_thread_backend_worker_is_serial(self, monkeypatch):
        """Nested solve_batch from a repro-exec worker thread must not
        fork a process pool out of a multithreaded parent."""
        import threading
        monkeypatch.setenv(BACKEND_ENV, "process")
        routed = {}

        def target():
            routed["name"] = route(("daghetpart",), workers=8)

        worker = threading.Thread(target=target, name="repro-exec_0")
        worker.start()
        worker.join()
        assert routed["name"] == "serial"


# ----------------------------------------------------------------------
# Policy enforcement on every backend
# ----------------------------------------------------------------------
@pytest.fixture
def slow_algorithm():
    """An algorithm that sleeps far longer than any test timeout."""

    @register_algorithm("slowpoke", summary="sleeps (timeout tests)")
    def slowpoke(workflow, cluster, config=None):
        time.sleep(30.0)
        raise AssertionError("unreachable: the watchdog should have fired")

    yield "slowpoke"
    unregister_algorithm("slowpoke")


@pytest.fixture
def flaky_algorithm(tmp_path):
    """Fails with NoFeasibleMappingError until the Nth attempt, then
    delegates to daghetmem. Attempt counting goes through the filesystem
    so forked process workers share it."""
    counter = tmp_path / "attempts"
    counter.write_text("0")

    @register_algorithm("flaky", summary="fails twice then succeeds (tests)")
    def flaky(workflow, cluster, config=None):
        from repro.utils.errors import NoFeasibleMappingError
        n = int(counter.read_text()) + 1
        counter.write_text(str(n))
        if n <= 2:
            raise NoFeasibleMappingError(f"transient failure #{n}")
        return get_algorithm("daghetmem").scheduler.run(workflow, cluster)

    yield "flaky", counter
    unregister_algorithm("flaky")


class TestTimeouts:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_timeout_is_structured_on_every_backend(self, backend,
                                                    slow_algorithm):
        request = _request(algorithm=slow_algorithm, config=None,
                           scale_memory=False,
                           policy=ExecutionPolicy(timeout_s=0.2))
        start = time.perf_counter()
        [result] = solve_batch([request], backend=backend, parallel=2)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # the batch streamed; nothing hung
        assert not result.success
        assert result.failure.kind == "timeout"
        assert "timeout_s=0.2" in result.failure.message
        assert result.makespan == float("inf")
        assert result.n_blocks == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_timed_out_request_does_not_stall_the_rest(self, backend,
                                                       slow_algorithm):
        requests = [
            _request(tags={"i": 0}),
            _request(algorithm=slow_algorithm, config=None,
                     scale_memory=False, tags={"i": 1},
                     policy=ExecutionPolicy(timeout_s=0.2)),
            _request(workflow=generate_workflow("bwa", 24, seed=2),
                     tags={"i": 2}),
        ]
        results = solve_batch(requests, backend=backend, parallel=2)
        assert [r.tags["i"] for r in results] == [0, 1, 2]
        assert results[0].success and results[2].success
        assert results[1].failure.kind == "timeout"

    def test_timeout_cluster_name_matches_other_outcomes(self,
                                                         slow_algorithm):
        """scenario diff aligns records by cluster name, so a timed-out
        record must report the same (memory-scaled) cluster a successful
        run of the same request would."""
        wf = generate_workflow("blast", 24, seed=1)
        reference = solve_batch([_request(workflow=wf)])[0]
        [timed_out] = solve_batch([
            _request(workflow=wf, algorithm=slow_algorithm, config=None,
                     policy=ExecutionPolicy(timeout_s=0.1))])
        assert timed_out.failure.kind == "timeout"
        assert timed_out.cluster == reference.cluster
        assert timed_out.bandwidth == reference.bandwidth

    def test_timeout_rehydrates_as_execution_timeout_error(self,
                                                           slow_algorithm):
        from repro.utils.errors import ExecutionTimeoutError
        request = _request(algorithm=slow_algorithm, config=None,
                           scale_memory=False,
                           policy=ExecutionPolicy(timeout_s=0.1))
        result = solve_with_policy(request)
        with pytest.raises(ExecutionTimeoutError):
            result.raise_if_failed()

    def test_timeouts_are_never_cached(self, slow_algorithm, tmp_path):
        from repro.api import ResultCache
        request = _request(algorithm=slow_algorithm, config=None,
                           scale_memory=False, want_mapping=False,
                           policy=ExecutionPolicy(timeout_s=0.1))
        with ResultCache(str(tmp_path / "c")) as cache:
            [result] = list(iter_solve_batch([request], cache=cache))
            assert result.failure.kind == "timeout"
            assert len(cache) == 0  # execution artifacts don't poison reruns

    def test_no_policy_means_no_watchdog_overhead(self):
        # plain requests take the direct solve path (no attempt thread)
        [a] = solve_batch([_request()])
        [b] = solve_batch([_request(policy=ExecutionPolicy())])
        assert _strip(a) == _strip(b)


class TestRetries:
    def test_retries_exhaust_then_report_last_failure(self, flaky_algorithm):
        name, counter = flaky_algorithm
        request = _request(algorithm=name, config=None,
                           policy=ExecutionPolicy(retries=1))
        result = solve_with_policy(request)
        assert not result.success  # 2 attempts, both transient failures
        assert int(counter.read_text()) == 2

    def test_enough_retries_succeed(self, flaky_algorithm):
        name, counter = flaky_algorithm
        request = _request(algorithm=name, config=None,
                           policy=ExecutionPolicy(retries=2))
        result = solve_with_policy(request)
        assert result.success  # third attempt delegates to daghetmem
        assert int(counter.read_text()) == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retries_are_deterministic(self, backend):
        # a deterministic failure retried N times reproduces itself, and
        # two runs of the same policy agree bit for bit (modulo runtime)
        request = _request(
            workflow=generate_workflow("blast", 24, seed=3),
            policy=ExecutionPolicy(retries=2))
        one = solve_batch([request], backend=backend, parallel=2)
        two = solve_batch([request], backend=backend, parallel=2)
        assert [_strip(r) for r in one] == [_strip(r) for r in two]

    def test_on_timeout_fail_stops_immediately(self, slow_algorithm):
        request = _request(algorithm=slow_algorithm, config=None,
                           scale_memory=False,
                           policy=ExecutionPolicy(timeout_s=0.15, retries=5,
                                                  on_timeout="fail"))
        start = time.perf_counter()
        result = solve_with_policy(request)
        assert result.failure.kind == "timeout"
        assert time.perf_counter() - start < 0.6  # one attempt, not six

    def test_on_timeout_requeue_retries(self, slow_algorithm):
        request = _request(algorithm=slow_algorithm, config=None,
                           scale_memory=False,
                           policy=ExecutionPolicy(timeout_s=0.1, retries=2,
                                                  on_timeout="requeue"))
        start = time.perf_counter()
        result = solve_with_policy(request)
        elapsed = time.perf_counter() - start
        assert result.failure.kind == "timeout"
        assert elapsed >= 0.25  # three attempts spent their budgets


# ----------------------------------------------------------------------
# Cross-backend equivalence (the acceptance criterion)
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    def test_smoke_corpus_identical_across_backends(self):
        requests = _smoke_requests()
        reference = [_strip(r) for r in
                     solve_batch(requests, backend="serial")]
        for backend in ("thread", "process"):
            got = [_strip(r) for r in
                   solve_batch(requests, backend=backend, parallel=2)]
            assert got == reference, f"{backend} diverged from serial"

    def test_streaming_order_preserved_on_every_backend(self):
        requests = _smoke_requests()
        expected = [r.tags["instance"] for r in requests]
        for backend in BACKENDS:
            results = list(iter_solve_batch(iter(requests), parallel=2,
                                            backend=backend, window=2))
            assert [r.tags["instance"] for r in results] == expected

    def test_cache_hits_identical_across_backends(self, tmp_path):
        from repro.api import open_cache
        requests = _smoke_requests()
        reference = None
        for backend in BACKENDS:
            with open_cache(f"sqlite://{tmp_path}/{backend}.db") as cache:
                results = solve_batch(requests, backend=backend, parallel=2,
                                      cache=cache)
                again = solve_batch(requests, backend=backend, parallel=2,
                                    cache=cache)
            stripped = [_strip(r) for r in again]
            assert [_strip(r) for r in results] == stripped
            if reference is None:
                reference = stripped
            else:
                assert stripped == reference

    def test_nested_batch_in_process_worker_routes_serial(self, monkeypatch):
        """REPRO_BACKEND must not make a pool worker fork grandchildren:
        the portfolio meta-scheduler calls solve_batch from inside a
        daemonic process-backend worker, which cannot have children."""
        monkeypatch.setenv(BACKEND_ENV, "process")
        request = _request(algorithm="portfolio", config=None)
        [result] = solve_batch([request], parallel=2)
        assert result.success
        assert "portfolio_winner" in result.extra

    def test_daemonic_process_routes_serial(self, monkeypatch):
        class FakeDaemon:
            daemon = True

        import multiprocessing
        monkeypatch.setattr(multiprocessing, "current_process", FakeDaemon)
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert route(("daghetpart",), workers=4) == "serial"
        monkeypatch.delenv(BACKEND_ENV)
        assert route(("daghetpart",), workers=4) == "serial"
        # an explicit argument is still honoured as written
        assert route(backend="thread", workers=4) == "thread"

    def test_explicit_backend_object_lifecycle(self):
        backend = create_backend("thread")
        backend.open(2)
        submission = backend.submit(_request())
        result = submission.result()
        assert submission.done() and result.success
        backend.close()


# ----------------------------------------------------------------------
# Within-run dedupe: duplicate requests solve once on parallel backends
# ----------------------------------------------------------------------
@pytest.fixture
def counting_algorithm(tmp_path):
    """Counts its solve calls through the filesystem (visible across
    forked process workers) before delegating to daghetmem."""
    counter = tmp_path / "solves"
    counter.write_text("")

    @register_algorithm("counting", summary="counts solves (dedupe tests)")
    def counting(workflow, cluster, config=None):
        with open(counter, "a") as fh:  # single-byte O_APPEND: atomic
            fh.write("x")
        time.sleep(0.05)  # keep the primary in flight while dupes arrive
        return get_algorithm("daghetmem").scheduler.run(workflow, cluster)

    yield "counting", counter
    unregister_algorithm("counting")


class TestWithinRunDedup:
    def _duplicated_requests(self, algorithm):
        wf_a = generate_workflow("blast", 24, seed=1)
        wf_b = generate_workflow("bwa", 24, seed=2)
        dup = _request(workflow=wf_a, algorithm=algorithm, config=None)
        other = _request(workflow=wf_b, algorithm=algorithm, config=None)
        # three copies of one computation interleaved with a second one
        return [dup, dup, other, dup]

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_duplicates_solve_once_with_a_cache(self, backend, tmp_path,
                                                counting_algorithm):
        from repro.api import open_cache
        name, counter = counting_algorithm
        requests = self._duplicated_requests(name)
        with open_cache(f"sqlite://{tmp_path}/dedupe.db") as cache:
            results = solve_batch(requests, backend=backend, parallel=4,
                                  cache=cache)
            stats = cache.stats()
        assert all(r.success for r in results)
        # the bug: every duplicate used to submit its own solve because
        # the cache was only consulted at submit time, before the first
        # copy's result had landed
        assert len(counter.read_text()) == 2  # one per unique computation
        assert stats["misses"] == 2 and stats["hits"] == 2

    def test_parallel_counters_match_serial(self, tmp_path,
                                            counting_algorithm):
        """The dedupe path must count exactly like a serial run: one miss
        per unique computation, one hit per duplicate."""
        from repro.api import open_cache
        name, counter = counting_algorithm
        requests = self._duplicated_requests(name)
        with open_cache(f"sqlite://{tmp_path}/serial.db") as serial_cache:
            serial = solve_batch(requests, backend="serial",
                                 cache=serial_cache)
            serial_stats = serial_cache.stats()
        counter.write_text("")
        with open_cache(f"sqlite://{tmp_path}/thread.db") as thread_cache:
            threaded = solve_batch(requests, backend="thread", parallel=4,
                                   cache=thread_cache)
            thread_stats = thread_cache.stats()
        assert [_strip(r) for r in threaded] == [_strip(r) for r in serial]
        for key in ("hits", "misses", "entries"):
            assert thread_stats[key] == serial_stats[key]

    def test_duplicates_of_a_timed_out_primary_resolve_inline(
            self, tmp_path, slow_algorithm):
        """A timeout is never cached, so a deferred duplicate finds no
        entry at drain time — it must re-solve inline (matching serial
        semantics) instead of yielding None or hanging."""
        from repro.api import open_cache
        request = _request(algorithm=slow_algorithm, config=None,
                           scale_memory=False,
                           policy=ExecutionPolicy(timeout_s=0.2))
        with open_cache(f"sqlite://{tmp_path}/t.db") as cache:
            results = solve_batch([request, request], backend="thread",
                                  parallel=2, cache=cache)
            assert len(cache) == 0
        assert [r.failure.kind for r in results] == ["timeout", "timeout"]

    def test_no_dedupe_without_a_cache(self, counting_algorithm):
        """Without a cache there is no fingerprinting (the cache-less
        fast path must stay zero-overhead), so duplicates each solve."""
        name, counter = counting_algorithm
        requests = self._duplicated_requests(name)
        results = solve_batch(requests, backend="thread", parallel=4)
        assert all(r.success for r in results)
        assert len(counter.read_text()) == 4
