"""Property-based tests (hypothesis) on the core invariants.

Strategies build random weighted DAGs; the properties assert the contracts
that every higher layer relies on:

* the partitioner always produces an acyclic, covering, disjoint partition;
* memdag traversals are valid topological orders with peaks sandwiched
  between the single-task lower bound and the serial upper bound;
* quotient merge followed by unmerge is the identity;
* makespan is monotone under uniform speed-ups;
* valid mappings stay valid under Step-4 swaps.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.makespan import makespan
from repro.core.quotient import QuotientGraph
from repro.core.swaps import improve_by_swaps
from repro.memdag.model import peak_of_traversal
from repro.memdag.requirement import RequirementCache
from repro.memdag.traversal import memdag_traversal
from repro.partition.api import acyclic_partition
from repro.platform.cluster import Cluster
from repro.platform.processor import Processor
from repro.workflow.graph import Workflow

SETTINGS = dict(deadline=None, max_examples=40,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def weighted_dags(draw, max_tasks=24):
    """Random DAG: edges only from lower to higher index (acyclic by design)."""
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    wf = Workflow("prop")
    for i in range(n):
        wf.add_task(i,
                    work=draw(st.floats(0.0, 100.0, allow_nan=False)),
                    memory=draw(st.floats(0.0, 50.0, allow_nan=False)))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()) and draw(st.integers(0, 2)) == 0:
                wf.add_edge(i, j, draw(st.floats(0.0, 20.0, allow_nan=False)))
    return wf


@given(wf=weighted_dags(), k=st.integers(1, 8))
@settings(**SETTINGS)
def test_partitioner_contract(wf, k):
    blocks = acyclic_partition(wf, k)
    assert 1 <= len(blocks) <= k
    seen = set()
    for b in blocks:
        assert b
        assert not (b & seen)
        seen |= b
    assert seen == set(wf.tasks())
    # acyclic quotient: block indices must admit a topological order
    index = {u: i for i, b in enumerate(blocks) for u in b}
    succ = {i: set() for i in range(len(blocks))}
    for u, v, _ in wf.edges():
        if index[u] != index[v]:
            succ[index[u]].add(index[v])
    indeg = {i: 0 for i in succ}
    for outs in succ.values():
        for j in outs:
            indeg[j] += 1
    ready = [i for i, d in indeg.items() if d == 0]
    count = 0
    while ready:
        i = ready.pop()
        count += 1
        for j in succ[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    assert count == len(blocks)


@given(wf=weighted_dags())
@settings(**SETTINGS)
def test_memdag_traversal_contract(wf):
    result = memdag_traversal(wf)
    order = list(result.order)
    assert sorted(order, key=str) == sorted(wf.tasks(), key=str)
    pos = {u: i for i, u in enumerate(order)}
    for u, v, _ in wf.edges():
        assert pos[u] < pos[v]
    # peak is realized by the returned order
    assert result.peak == peak_of_traversal(wf, order)
    # sandwiched between single-task lower bound and serial upper bound
    lower = max(wf.task_requirement(u) for u in wf.tasks())
    upper = sum(wf.memory(u) + wf.out_cost(u) for u in wf.tasks())
    assert result.peak <= upper + 1e-6
    assert result.peak >= lower - 1e-6


@given(wf=weighted_dags(max_tasks=16), data=st.data())
@settings(**SETTINGS)
def test_quotient_merge_unmerge_identity(wf, data):
    n = wf.n_tasks
    if n < 3:
        return
    # random partition into 3 interval blocks of a topological order
    order = wf.topological_order()
    c1 = data.draw(st.integers(1, n - 2))
    c2 = data.draw(st.integers(c1 + 1, n - 1))
    blocks = [set(order[:c1]), set(order[c1:c2]), set(order[c2:])]
    q = QuotientGraph.from_partition(wf, blocks)
    snapshot_blocks = {bid: set(b.tasks) for bid, b in q.blocks.items()}
    snapshot_succ = {bid: dict(nbrs) for bid, nbrs in q.succ.items()}
    ids = list(q.blocks)
    a = data.draw(st.sampled_from(ids))
    b = data.draw(st.sampled_from([x for x in ids if x != a]))
    _, token = q.merge(a, b)
    q.unmerge(token)
    assert {bid: set(b.tasks) for bid, b in q.blocks.items()} == snapshot_blocks
    assert {bid: dict(nbrs) for bid, nbrs in q.succ.items()} == snapshot_succ
    for bid, nbrs in q.succ.items():
        for x, c in nbrs.items():
            assert q.pred[x][bid] == c


@given(wf=weighted_dags(max_tasks=12), factor=st.floats(1.1, 8.0))
@settings(**SETTINGS)
def test_makespan_monotone_in_speed(wf, factor):
    order = wf.topological_order()
    mid = max(1, len(order) // 2)
    blocks = [set(order[:mid]), set(order[mid:])] if len(order) > 1 else [set(order)]
    blocks = [b for b in blocks if b]
    slow_procs = [Processor(f"s{i}", 1.0, 1e12) for i in range(len(blocks))]
    fast_procs = [Processor(f"f{i}", factor, 1e12) for i in range(len(blocks))]
    q_slow = QuotientGraph.from_partition(wf, blocks, slow_procs)
    q_fast = QuotientGraph.from_partition(wf, blocks, fast_procs)
    ms_slow = makespan(q_slow, Cluster(slow_procs))
    ms_fast = makespan(q_fast, Cluster(fast_procs))
    assert ms_fast <= ms_slow + 1e-9


@given(wf=weighted_dags(max_tasks=14), data=st.data())
@settings(**SETTINGS)
def test_swaps_preserve_validity_and_never_worsen(wf, data):
    order = wf.topological_order()
    n = len(order)
    if n < 2:
        return
    cut = data.draw(st.integers(1, n - 1))
    blocks = [set(order[:cut]), set(order[cut:])]
    procs = [Processor("p0", 2.0, 1e12), Processor("p1", 5.0, 1e12),
             Processor("p2", 1.0, 1e12)]
    cluster = Cluster(procs)
    q = QuotientGraph.from_partition(wf, blocks, procs[:2])
    cache = RequirementCache(wf)
    before = makespan(q, cluster)
    improve_by_swaps(q, cluster, cache)
    after = makespan(q, cluster)
    assert after <= before + 1e-9
    # still a valid injective assignment
    names = [b.proc.name for b in q.blocks.values()]
    assert len(names) == len(set(names))


@given(wf=weighted_dags(max_tasks=14), k=st.integers(1, 4))
@settings(deadline=None, max_examples=15,
          suppress_health_check=[HealthCheck.too_slow])
def test_end_to_end_heuristic_on_random_dags(wf, k):
    """DagHetPart either returns a fully valid mapping or raises the
    documented infeasibility error — never a corrupt result."""
    from repro.core.heuristic import DagHetPartConfig, dag_het_part
    from repro.utils.errors import NoFeasibleMappingError

    total_req = sum(wf.task_requirement(u) for u in wf.tasks()) + 1.0
    procs = [Processor(f"p{i}", speed=float(i + 1), memory=total_req)
             for i in range(k)]
    cluster = Cluster(procs)
    try:
        mapping = dag_het_part(
            wf, cluster, DagHetPartConfig(k_prime_strategy="all"))
    except NoFeasibleMappingError:
        return
    mapping.validate()
    # ample memory: a mapping must exist and cover everything
    assert sum(len(a.tasks) for a in mapping.assignments) == wf.n_tasks


@given(wf=weighted_dags(max_tasks=16))
@settings(deadline=None, max_examples=20,
          suppress_health_check=[HealthCheck.too_slow])
def test_baseline_single_ample_processor(wf):
    """With one huge processor the baseline returns exactly one block whose
    makespan is total work / speed."""
    from repro.core.baseline import dag_het_mem

    proc = Processor("p", speed=3.0, memory=1e15)
    mapping = dag_het_mem(wf, Cluster([proc]))
    mapping.validate()
    assert mapping.n_blocks == 1
    assert abs(mapping.makespan() - wf.total_work() / 3.0) <= \
        1e-9 * max(1.0, wf.total_work())


@given(wf=weighted_dags(max_tasks=14), data=st.data())
@settings(deadline=None, max_examples=20,
          suppress_health_check=[HealthCheck.too_slow])
def test_task_level_simulation_never_exceeds_block_bound(wf, data):
    """Property form of the Section 3.3 overestimation claim."""
    from repro.core.mapping import BlockAssignment, Mapping
    from repro.core.simulate import simulate_task_level
    from repro.memdag.requirement import RequirementCache

    order = wf.topological_order()
    n = len(order)
    cut = data.draw(st.integers(1, max(1, n - 1))) if n > 1 else 1
    blocks = [set(order[:cut]), set(order[cut:])] if n > 1 else [set(order)]
    blocks = [b for b in blocks if b]
    procs = [Processor(f"p{i}", speed=2.0, memory=1e15)
             for i in range(len(blocks))]
    cluster = Cluster(procs)
    cache = RequirementCache(wf)
    assignments = []
    for tasks, proc in zip(blocks, procs):
        res = cache.requirement(tasks)
        assignments.append(BlockAssignment(frozenset(tasks), proc,
                                           res.peak, res.order))
    mapping = Mapping(wf, cluster, assignments)
    simulated, events = simulate_task_level(mapping)
    assert simulated <= mapping.makespan() + 1e-6
    assert len(events) == wf.n_tasks
