"""Render experiments_results.json as ASCII figures.

Companion to ``scripts/run_all_experiments.py``: turns the recorded series
into the text equivalents of the paper's Figs. 3-9.

Usage: python scripts/render_figures.py [experiments_results.json]
"""

from __future__ import annotations

import json
import sys

from repro.experiments.plotting import ascii_bar_chart, ascii_line_plot


def main(path: str = "experiments_results.json") -> int:
    data = json.load(open(path))
    figs = data["figures"]

    print(ascii_bar_chart(
        {k: v for k, v in figs["fig3_left"].items()},
        title="Fig. 3 (left): relative makespan (%) by workflow type"))
    print()

    series = {}
    for n_cpus, per_cat in figs["fig3_right"].items():
        for cat, value in per_cat.items():
            series.setdefault(cat, {})[float(n_cpus)] = value
    print(ascii_line_plot(series, title="Fig. 3 (right): relative makespan vs cluster size",
                          x_label="CPUs", y_label="relative makespan %"))
    print()

    het_order = {"nohet": 0.0, "lesshet": 1.0, "default": 2.0, "morehet": 3.0}
    series = {}
    for level, per_cat in figs["fig4_relative"].items():
        for cat, value in per_cat.items():
            series.setdefault(cat, {})[het_order[level]] = value
    print(ascii_line_plot(
        series, title="Fig. 4: relative makespan vs heterogeneity "
                      "(0=nohet 1=lesshet 2=default 3=morehet)",
        x_label="heterogeneity level", y_label="relative makespan %"))
    print()

    series = {}
    for key, value in figs["fig5"].items():
        family, n = key.rsplit(":", 1)
        series.setdefault(family, {})[float(n)] = value
    print(ascii_line_plot(series, title="Fig. 5: relative makespan per family vs size",
                          x_label="n_tasks", y_label="relative makespan %"))
    print()

    series = {}
    for key, value in figs["fig6"].items():
        family, n = key.rsplit(":", 1)
        series.setdefault(family, {})[float(n)] = value
    print(ascii_line_plot(series, title="Fig. 6: absolute DagHetPart makespan per family",
                          x_label="n_tasks", y_label="makespan"))
    print()

    series = {}
    for beta, per_cat in figs["fig7"].items():
        for cat, value in per_cat.items():
            series.setdefault(cat, {})[float(beta)] = value
    print(ascii_line_plot(series, title="Fig. 7: relative makespan vs bandwidth",
                          x_label="beta", y_label="relative makespan %"))
    print()

    print(ascii_bar_chart(
        {cat: row["avg_absolute_runtime_sec"]
         for cat, row in figs["table4"].items()},
        title="Fig. 9 / Table 4: avg DagHetPart runtime (s) per workflow set",
        fmt="{:.2f}"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(*sys.argv[1:]))
