#!/usr/bin/env bash
# Queue-backend CI smoke: serial ≡ queue bit-for-bit, shared cache,
# and a kill-one-worker leg proving lease reclaim loses no requests.
#
# Usage: scripts/queue_smoke.sh [WORKDIR]   (run from the repo root)
set -euo pipefail

WORK="${1:-$(mktemp -d /tmp/queue-smoke.XXXXXX)}"
SPEC="examples/specs/queue_smoke.json"
export PYTHONPATH=src
mkdir -p "$WORK"

echo "== reference: serial run =="
python -m repro scenario run "$SPEC" --backend serial \
  --json "$WORK/serial.jsonl"

echo "== leg 1: spawn mode, 2 workers, shared sqlite cache =="
python -m repro scenario run "$SPEC" --backend queue --workers 2 \
  --cache "sqlite://$WORK/shared.db" --json "$WORK/queue.jsonl" \
  | tee "$WORK/queue_first.log"
python -m repro scenario diff "$WORK/serial.jsonl" "$WORK/queue.jsonl"

echo "== leg 1b: re-run must be served from the shared cache =="
python -m repro scenario run "$SPEC" --backend queue --workers 2 \
  --cache "sqlite://$WORK/shared.db" | tee "$WORK/queue_second.log"
grep -q "misses=0" "$WORK/queue_second.log"

echo "== leg 2: attach mode, external workers, one SIGKILLed mid-sweep =="
SPOOL="$WORK/spool"
mkdir -p "$SPOOL"
export REPRO_QUEUE_DIR="$SPOOL" REPRO_QUEUE_SPAWN=0 REPRO_QUEUE_LEASE_S=2
python -m repro worker "$SPOOL" --id w1 --lease 2 > "$WORK/w1.log" 2>&1 &
W1=$!
python -m repro worker "$SPOOL" --id w2 --lease 2 > "$WORK/w2.log" 2>&1 &
W2=$!
python -m repro scenario run "$SPEC" --backend queue \
  --json "$WORK/killed.jsonl" > "$WORK/killed.log" 2>&1 &
RUN=$!
# let the sweep get going (first result landed), then take out one
# worker the hard way
while [ -z "$(ls "$SPOOL/done" 2>/dev/null)" ]; do
  sleep 0.2
done
kill -9 "$W1"
echo "worker w1 SIGKILLed; its claims must be reclaimed via lease expiry"
wait "$RUN"
cat "$WORK/killed.log"
echo "asserting zero dropped requests (scenario diff vs serial)"
python -m repro scenario diff "$WORK/serial.jsonl" "$WORK/killed.jsonl"
kill "$W2" 2>/dev/null || true
wait "$W2" 2>/dev/null || true

echo "queue smoke: all legs passed"
