"""Run the complete evaluation and dump results for EXPERIMENTS.md.

Collects one record set per cluster configuration and derives every
table/figure from the shared records (instead of re-running corpora per
figure). Writes ``experiments_results.json`` and a plain-text report.

Environment: REPRO_SCALE / REPRO_FULL control workflow sizes as usual;
``--parallel N`` (or REPRO_PARALLEL) fans requests out over N worker
processes per corpus run. Scheduling goes through ``repro.api.solve_batch``;
the dumped ``results`` section holds the full ScheduleResult envelopes
(sweep traces, winning k', structured failure reasons).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict

from repro.api import solve_batch
from repro.core.heuristic import DagHetPartConfig
from repro.experiments.instances import build_corpus, synthetic_sizes
from repro.experiments.metrics import (
    aggregate_by,
    makespan_ratios,
    relative_makespan_by,
    success_counts,
)
from repro.experiments.runner import corpus_requests, record_from_result
from repro.platform.presets import (
    default_cluster,
    large_cluster,
    lesshet_cluster,
    morehet_cluster,
    nohet_cluster,
    small_cluster,
)

CONFIG = DagHetPartConfig(k_prime_strategy="doubling")
SEED = 0


def log(msg: str) -> None:
    print(f"[{time.strftime('%H:%M:%S')}] {msg}", flush=True)


def run(cluster, corpus, label, parallel=None):
    """One corpus sweep through the repro.api batch façade."""
    log(f"running corpus on {label} ({len(corpus)} instances)")
    start = time.time()
    requests = corpus_requests(corpus, cluster, config=CONFIG)
    results = solve_batch(requests, parallel=parallel)
    log(f"  done in {time.time() - start:.0f}s")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-j", "--parallel", type=int, default=None, metavar="N",
                        help="worker processes per corpus run "
                             "(-1 = all CPUs; default: $REPRO_PARALLEL or serial)")
    args = parser.parse_args()
    sizes = synthetic_sizes()
    log(f"synthetic sizes: {sizes}")
    corpus = build_corpus(seed=SEED, sizes=sizes)
    corpus_4x = build_corpus(seed=SEED, sizes=sizes, work_factor=4.0)

    j = args.parallel
    plan = {
        "default": (default_cluster(), corpus, "default-36"),
        "small": (small_cluster(), corpus, "small-18"),
        "large": (large_cluster(), corpus, "large-60"),
        "nohet": (nohet_cluster(), corpus, "nohet"),
        "lesshet": (lesshet_cluster(), corpus, "lesshet"),
        "morehet": (morehet_cluster(), corpus, "morehet"),
        "beta0.1": (default_cluster(bandwidth=0.1), corpus, "beta=0.1"),
        "beta5": (default_cluster(bandwidth=5.0), corpus, "beta=5"),
        "demand4x": (default_cluster(), corpus_4x, "4x demand"),
    }
    result_sets = {key: run(cluster, corp, label, j)
                   for key, (cluster, corp, label) in plan.items()}
    record_sets = {key: [record_from_result(r) for r in results]
                   for key, results in result_sets.items()}

    out = {"sizes": sizes, "figures": {}}

    def rel_by_cat(records):
        return relative_makespan_by(records, key=lambda r: r.category)

    # Fig 3 left + overall
    d = record_sets["default"]
    fig3_left = rel_by_cat(d)
    fig3_left["all"] = relative_makespan_by(d, key=lambda r: "all")["all"]
    out["figures"]["fig3_left"] = fig3_left

    # Fig 3 right
    out["figures"]["fig3_right"] = {
        label: rel_by_cat(record_sets[key])
        for label, key in (("18", "small"), ("36", "default"), ("60", "large"))
    }

    # Fig 4
    out["figures"]["fig4_relative"] = {
        level: rel_by_cat(record_sets[level])
        for level in ("nohet", "lesshet", "default", "morehet")
    }
    out["figures"]["fig4_absolute"] = {
        level: aggregate_by(
            [r for r in record_sets[level]
             if r.algorithm == "DagHetPart" and r.success],
            key=lambda r: r.category, value=lambda r: r.makespan)
        for level in ("nohet", "lesshet", "default", "morehet")
    }

    # Fig 5 (per family relative) and Fig 6 (absolute)
    out["figures"]["fig5"] = {
        f"{rec.family}:{rec.n_tasks}": 100.0 * ratio
        for rec, ratio in makespan_ratios(d) if rec.category != "real"
    }
    out["figures"]["fig6"] = {
        f"{r.family}:{r.n_tasks}": r.makespan
        for r in d if r.algorithm == "DagHetPart" and r.success
        and r.category != "real"
    }

    # Fig 7
    out["figures"]["fig7"] = {
        label: rel_by_cat(record_sets[key])
        for label, key in (("0.1", "beta0.1"), ("1.0", "default"), ("5.0", "beta5"))
    }

    # Figs 8/9 + Table 4
    by_instance = {}
    for r in d:
        by_instance.setdefault(r.instance, {})[r.algorithm] = r
    rel_rt, abs_rt = {}, {}
    for algs in by_instance.values():
        mem, part = algs.get("DagHetMem"), algs.get("DagHetPart")
        if mem is None or part is None:
            continue
        abs_rt.setdefault(part.category, []).append(part.runtime)
        if mem.runtime > 0:
            rel_rt.setdefault(part.category, []).append(part.runtime / mem.runtime)
    out["figures"]["table4"] = {
        cat: {"avg_relative_runtime": sum(rel_rt[cat]) / len(rel_rt[cat]),
              "avg_absolute_runtime_sec": sum(abs_rt[cat]) / len(abs_rt[cat])}
        for cat in abs_rt
    }

    # Success counts (Sec 5.2.2)
    out["figures"]["success_counts"] = {
        key: {f"{cat}/{alg}": list(v)
              for (cat, alg), v in success_counts(record_sets[key]).items()}
        for key in ("small", "default", "large")
    }

    # Demand 4x (Sec 5.2.4)
    out["figures"]["demand4x"] = {
        "1x": rel_by_cat(d),
        "4x": rel_by_cat(record_sets["demand4x"]),
    }

    # Failure audit: why any run failed, per cluster configuration
    out["figures"]["failures"] = {
        key: sorted(f"{r.instance}/{r.algorithm}: {r.failure_reason}"
                    for r in records if not r.success)
        for key, records in record_sets.items()
        if any(not r.success for r in records)
    }

    out["records"] = {
        key: [asdict(r) for r in records] for key, records in record_sets.items()
    }
    # the full API envelopes (sweep trace, k', structured failures); each
    # entry round-trips through repro.api.ScheduleResult.from_dict so the
    # evaluation can be re-aggregated later without re-scheduling
    out["results"] = {
        key: [r.to_dict() for r in results]
        for key, results in result_sets.items()
    }

    with open("experiments_results.json", "w") as fh:
        json.dump(out, fh, indent=1, default=str)
    log("wrote experiments_results.json")

    # human-readable summary
    for name, data in out["figures"].items():
        log(f"{name}: {json.dumps(data)[:400]}")


if __name__ == "__main__":
    main()
