"""Run the complete evaluation and dump results for EXPERIMENTS.md.

Each cluster configuration is one declarative :class:`ScenarioSpec`
(built by :func:`repro.experiments.figures.corpus_scenario` — the same
bridge the figure drivers use), executed through ``repro.api``'s
streaming scenario runner; every table/figure is derived from the shared
record sets instead of re-running corpora per figure. Writes
``experiments_results.json`` and a plain-text report.

Environment: REPRO_SCALE / REPRO_FULL control workflow sizes as usual;
``--parallel N`` (or REPRO_PARALLEL) fans requests out over N worker
processes per scenario. ``--cache-dir DIR`` turns the whole evaluation
into a resumable sweep: results are fingerprint-cached on disk, so an
interrupted run (or a re-run after editing the aggregations) only solves
what is missing. The dumped ``results`` section holds the full
ScheduleResult envelopes (sweep traces, winning k', structured failure
reasons).

Tradeoff note: each scenario regenerates its (deterministic, seeded)
corpus during expansion rather than sharing one pre-built instance list
across cluster configurations as the pre-scenario script did. Workflow
generation is a few percent of solve time at any scale, and in exchange
every record set is a self-contained JSON spec (dumped under
``scenarios`` in the output) that reproduces standalone via
``repro scenario run``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import asdict

from repro.api import AlgorithmSpec, AnnealConfig, open_cache, run_scenario
from repro.core.heuristic import DagHetPartConfig
from repro.experiments.figures import corpus_scenario
from repro.experiments.instances import synthetic_sizes
from repro.experiments.metrics import (
    aggregate_by,
    makespan_ratios,
    relative_makespan_by,
    success_counts,
)
from repro.experiments.runner import record_from_result

CONFIG = DagHetPartConfig(k_prime_strategy="doubling")
SEED = 0


def log(msg: str) -> None:
    print(f"[{time.strftime('%H:%M:%S')}] {msg}", flush=True)


def run(spec, label, parallel=None, cache=None, backend=None):
    """One scenario sweep, streamed through the repro.api batch façade."""
    log(f"running scenario {spec.name!r} on {label} ({spec.size()} requests)")
    start = time.time()
    results = list(run_scenario(spec, parallel=parallel, cache=cache,
                                backend=backend))
    log(f"  done in {time.time() - start:.0f}s")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-j", "--parallel", type=int, default=None, metavar="N",
                        help="workers per scenario "
                             "(-1 = all CPUs; default: $REPRO_PARALLEL or serial)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="execution backend (serial/thread/process; "
                             "default: routed per batch)")
    parser.add_argument("--cache", metavar="URI",
                        help="fingerprint-keyed result cache URI "
                             "(sqlite:///path.db, jsonl://DIR, or a plain "
                             "directory); makes the whole evaluation resumable")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="legacy alias for --cache with a plain directory")
    args = parser.parse_args()
    sizes = synthetic_sizes()
    log(f"synthetic sizes: {sizes}")
    uri = args.cache or args.cache_dir
    cache = open_cache(uri) if uri else None

    def spec(name, **kwargs):
        return corpus_scenario(name, seed=SEED, sizes=sizes, config=CONFIG,
                               **kwargs)

    plan = {
        "default": (spec("all-default", preset="default"), "default-36"),
        "small": (spec("all-small", preset="small"), "small-18"),
        "large": (spec("all-large", preset="large"), "large-60"),
        "nohet": (spec("all-nohet", preset="nohet"), "nohet"),
        "lesshet": (spec("all-lesshet", preset="lesshet"), "lesshet"),
        "morehet": (spec("all-morehet", preset="morehet"), "morehet"),
        "beta0.1": (spec("all-beta0.1", preset="default", bandwidth=0.1),
                    "beta=0.1"),
        "beta5": (spec("all-beta5", preset="default", bandwidth=5.0), "beta=5"),
        "demand4x": (spec("all-demand4x", preset="default", work_factor=4.0),
                     "4x demand"),
        "refinement": (spec("all-refinement", preset="default",
                            algorithm_specs=(
                                AlgorithmSpec("daghetpart", config=CONFIG),
                                AlgorithmSpec("anneal", config=AnnealConfig(
                                    k_prime_strategy="doubling")),
                                AlgorithmSpec("portfolio"))),
                       "refinement suite"),
    }
    result_sets = {key: run(scenario, label, args.parallel, cache,
                            args.backend)
                   for key, (scenario, label) in plan.items()}
    if cache is not None:
        stats = cache.stats()
        log(f"cache: hits={stats['hits']} misses={stats['misses']} "
            f"entries={stats['entries']}")
        cache.close()
    record_sets = {key: [record_from_result(r) for r in results]
                   for key, results in result_sets.items()}

    out = {"sizes": sizes, "figures": {}}

    def rel_by_cat(records):
        return relative_makespan_by(records, key=lambda r: r.category)

    # Fig 3 left + overall
    d = record_sets["default"]
    fig3_left = rel_by_cat(d)
    fig3_left["all"] = relative_makespan_by(d, key=lambda r: "all")["all"]
    out["figures"]["fig3_left"] = fig3_left

    # Fig 3 right
    out["figures"]["fig3_right"] = {
        label: rel_by_cat(record_sets[key])
        for label, key in (("18", "small"), ("36", "default"), ("60", "large"))
    }

    # Fig 4
    out["figures"]["fig4_relative"] = {
        level: rel_by_cat(record_sets[level])
        for level in ("nohet", "lesshet", "default", "morehet")
    }
    out["figures"]["fig4_absolute"] = {
        level: aggregate_by(
            [r for r in record_sets[level]
             if r.algorithm == "DagHetPart" and r.success],
            key=lambda r: r.category, value=lambda r: r.makespan)
        for level in ("nohet", "lesshet", "default", "morehet")
    }

    # Fig 5 (per family relative) and Fig 6 (absolute)
    out["figures"]["fig5"] = {
        f"{rec.family}:{rec.n_tasks}": 100.0 * ratio
        for rec, ratio in makespan_ratios(d) if rec.category != "real"
    }
    out["figures"]["fig6"] = {
        f"{r.family}:{r.n_tasks}": r.makespan
        for r in d if r.algorithm == "DagHetPart" and r.success
        and r.category != "real"
    }

    # Fig 7
    out["figures"]["fig7"] = {
        label: rel_by_cat(record_sets[key])
        for label, key in (("0.1", "beta0.1"), ("1.0", "default"), ("5.0", "beta5"))
    }

    # Figs 8/9 + Table 4
    by_instance = {}
    for r in d:
        by_instance.setdefault(r.instance, {})[r.algorithm] = r
    rel_rt, abs_rt = {}, {}
    for algs in by_instance.values():
        mem, part = algs.get("DagHetMem"), algs.get("DagHetPart")
        if mem is None or part is None:
            continue
        abs_rt.setdefault(part.category, []).append(part.runtime)
        if mem.runtime > 0:
            rel_rt.setdefault(part.category, []).append(part.runtime / mem.runtime)
    out["figures"]["table4"] = {
        cat: {"avg_relative_runtime": sum(rel_rt[cat]) / len(rel_rt[cat]),
              "avg_absolute_runtime_sec": sum(abs_rt[cat]) / len(abs_rt[cat])}
        for cat in abs_rt
    }

    # Success counts (Sec 5.2.2)
    out["figures"]["success_counts"] = {
        key: {f"{cat}/{alg}": list(v)
              for (cat, alg), v in success_counts(record_sets[key]).items()}
        for key in ("small", "default", "large")
    }

    # Demand 4x (Sec 5.2.4)
    out["figures"]["demand4x"] = {
        "1x": rel_by_cat(d),
        "4x": rel_by_cat(record_sets["demand4x"]),
    }

    # Refinement suite: anneal vs its DagHetPart seed, portfolio winners
    refinement = record_sets["refinement"]
    gain = relative_makespan_by(refinement, key=lambda r: r.category,
                                numerator="Anneal", denominator="DagHetPart")
    gain["all"] = relative_makespan_by(
        refinement, key=lambda r: "all", numerator="Anneal",
        denominator="DagHetPart").get("all", float("nan"))
    out["figures"]["refinement_gain"] = gain

    # Failure audit: why any run failed, per cluster configuration
    out["figures"]["failures"] = {
        key: sorted(f"{r.instance}/{r.algorithm}: {r.failure_reason}"
                    for r in records if not r.success)
        for key, records in record_sets.items()
        if any(not r.success for r in records)
    }

    out["records"] = {
        key: [asdict(r) for r in records] for key, records in record_sets.items()
    }
    # the full API envelopes (sweep trace, k', structured failures); each
    # entry round-trips through repro.api.ScheduleResult.from_dict so the
    # evaluation can be re-aggregated later without re-scheduling
    out["results"] = {
        key: [r.to_dict() for r in results]
        for key, results in result_sets.items()
    }
    # the scenario specs themselves, so any record set can be reproduced
    # standalone with `repro scenario run`
    out["scenarios"] = {key: scenario.to_dict()
                        for key, (scenario, _) in plan.items()}

    with open("experiments_results.json", "w") as fh:
        json.dump(out, fh, indent=1, default=str)
    log("wrote experiments_results.json")

    # human-readable summary
    for name, data in out["figures"].items():
        log(f"{name}: {json.dumps(data)[:400]}")


if __name__ == "__main__":
    main()
